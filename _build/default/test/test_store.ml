let cmd id op = Command.make ~id ~client:0 op

let test_conflicts () =
  let w1 = cmd 1 (Command.Put (5, 10)) in
  let w2 = cmd 2 (Command.Put (5, 20)) in
  let r = cmd 3 (Command.Get 5) in
  let other = cmd 4 (Command.Get 6) in
  Alcotest.(check bool) "w/w same key" true (Command.conflicts w1 w2);
  Alcotest.(check bool) "w/r same key" true (Command.conflicts w1 r);
  Alcotest.(check bool) "r/r same key" false (Command.conflicts r r);
  Alcotest.(check bool) "different keys" false (Command.conflicts w1 other);
  Alcotest.(check bool) "noop never conflicts" false
    (Command.conflicts Command.noop w1)

let test_command_accessors () =
  let c = cmd 1 (Command.Put (3, 4)) in
  Alcotest.(check int) "key" 3 (Command.key c);
  Alcotest.(check bool) "is_write" true (Command.is_write c);
  Alcotest.(check bool) "read not write" true (Command.is_read (cmd 2 (Command.Get 1)));
  Alcotest.(check bool) "delete is write" true (Command.is_write (cmd 3 (Command.Delete 1)));
  Alcotest.(check bool) "noop" true (Command.is_noop Command.noop)

let test_kv_versions () =
  let kv = Kv.create () in
  Alcotest.(check (option int)) "absent" None (Kv.get kv 1);
  Kv.put kv (cmd 1 (Command.Put (1, 10))) 1 10;
  Alcotest.(check (option int)) "first" (Some 10) (Kv.get kv 1);
  Kv.put kv (cmd 2 (Command.Put (1, 20))) 1 20;
  Alcotest.(check (option int)) "updated" (Some 20) (Kv.get kv 1);
  Kv.delete kv (cmd 3 (Command.Delete 1)) 1;
  Alcotest.(check (option int)) "deleted" None (Kv.get kv 1);
  let versions = Kv.versions kv 1 in
  Alcotest.(check int) "three versions" 3 (List.length versions);
  Alcotest.(check (list int)) "seq order" [ 1; 2; 3 ]
    (List.map (fun v -> v.Kv.seq) versions)

let test_kv_keys () =
  let kv = Kv.create () in
  Kv.put kv (cmd 1 (Command.Put (1, 1))) 1 1;
  Kv.put kv (cmd 2 (Command.Put (2, 2))) 2 2;
  Alcotest.(check int) "size" 2 (Kv.size kv);
  Alcotest.(check (list int)) "keys" [ 1; 2 ] (List.sort compare (Kv.keys kv))

let test_state_machine_apply () =
  let sm = State_machine.create () in
  let r1 = State_machine.apply sm (cmd 1 (Command.Put (1, 10))) in
  Alcotest.(check (option int)) "write returns none" None r1.State_machine.read;
  let r2 = State_machine.apply sm (cmd 2 (Command.Get 1)) in
  Alcotest.(check (option int)) "read sees write" (Some 10) r2.State_machine.read;
  let r3 = State_machine.apply sm (cmd 3 (Command.Get 99)) in
  Alcotest.(check (option int)) "missing key" None r3.State_machine.read;
  Alcotest.(check int) "applied count" 3 (State_machine.applied_count sm)

let test_state_machine_noop () =
  let sm = State_machine.create () in
  ignore (State_machine.apply sm Command.noop);
  Alcotest.(check int) "no keys touched" 0 (Kv.size (State_machine.store sm));
  Alcotest.(check int) "but recorded" 1 (State_machine.applied_count sm)

let test_key_history () =
  let sm = State_machine.create () in
  let w1 = cmd 1 (Command.Put (1, 10)) in
  let w2 = cmd 2 (Command.Put (1, 20)) in
  ignore (State_machine.apply sm w1);
  ignore (State_machine.apply sm (cmd 5 (Command.Get 1)));
  ignore (State_machine.apply sm w2);
  let h = State_machine.key_history sm 1 in
  Alcotest.(check int) "two writers" 2 (List.length h);
  Alcotest.(check bool) "order" true
    (Command.equal (List.nth h 0) w1 && Command.equal (List.nth h 1) w2)

let test_executor_dedup () =
  let e = Executor.create () in
  let w = cmd 1 (Command.Put (1, 10)) in
  Alcotest.(check (option int)) "first" None (Executor.execute e w);
  let r = cmd 2 (Command.Get 1) in
  Alcotest.(check (option int)) "read" (Some 10) (Executor.execute e r);
  (* re-deciding the same read returns the memoized result even after
     later writes *)
  ignore (Executor.execute e (cmd 3 (Command.Put (1, 99))));
  Alcotest.(check (option int)) "memoized" (Some 10) (Executor.execute e r);
  Alcotest.(check int) "3 distinct" 3 (Executor.executed_count e);
  Alcotest.(check bool) "already executed" true (Executor.already_executed e r)

let test_executor_noop () =
  let e = Executor.create () in
  Alcotest.(check (option int)) "noop" None (Executor.execute e Command.noop);
  Alcotest.(check int) "not counted" 0 (Executor.executed_count e);
  Alcotest.(check bool) "noop not tracked" false
    (Executor.already_executed e Command.noop)

let test_executor_distinct_clients () =
  let e = Executor.create () in
  let a = Command.make ~id:1 ~client:0 (Command.Put (1, 10)) in
  let b = Command.make ~id:1 ~client:1 (Command.Put (1, 20)) in
  ignore (Executor.execute e a);
  ignore (Executor.execute e b);
  Alcotest.(check int) "same id different client" 2 (Executor.executed_count e)

let test_ballot_ordering () =
  let open Ballot in
  let b1 = initial ~owner:0 in
  let b2 = initial ~owner:1 in
  Alcotest.(check bool) "owner tiebreak" true (b1 < b2);
  Alcotest.(check bool) "round dominates" true (b2 < next b1 ~owner:0);
  Alcotest.(check bool) "zero smallest" true (zero < b1);
  Alcotest.(check bool) "succ bigger" true (b1 < succ b1);
  Alcotest.(check bool) "equal" true (equal b1 (initial ~owner:0))

let test_slot_log () =
  let log = Slot_log.create () in
  Alcotest.(check (option int)) "empty" None (Slot_log.get log 0);
  Slot_log.set log 2 20;
  Alcotest.(check (option int)) "sparse" (Some 20) (Slot_log.get log 2);
  Alcotest.(check int) "next" 3 (Slot_log.next_slot log);
  Alcotest.(check int) "reserve" 3 (Slot_log.reserve log);
  Alcotest.(check int) "filled" 1 (Slot_log.filled_count log)

let test_slot_log_frontier () =
  let log = Slot_log.create () in
  Slot_log.set log 0 "a";
  Slot_log.set log 2 "c";
  let executed = ref [] in
  Slot_log.advance_frontier log
    ~executable:(fun _ -> true)
    ~f:(fun i v -> executed := (i, v) :: !executed);
  Alcotest.(check int) "stops at gap" 1 (Slot_log.exec_frontier log);
  Slot_log.set log 1 "b";
  Slot_log.advance_frontier log
    ~executable:(fun _ -> true)
    ~f:(fun i v -> executed := (i, v) :: !executed);
  Alcotest.(check int) "resumes past gap" 3 (Slot_log.exec_frontier log);
  Alcotest.(check (list (pair int string))) "order" [ (0, "a"); (1, "b"); (2, "c") ]
    (List.rev !executed)

let test_slot_log_growth () =
  let log = Slot_log.create () in
  Slot_log.set log 1000 42;
  Alcotest.(check (option int)) "grown" (Some 42) (Slot_log.get log 1000)

let test_config_validation () =
  let ok c = Alcotest.(check bool) "valid" true (Config.validate c = Ok ()) in
  let bad c = Alcotest.(check bool) "invalid" true (Config.validate c <> Ok ()) in
  ok (Config.default ~n_replicas:5);
  bad { (Config.default ~n_replicas:5) with Config.n_replicas = 0 };
  bad { (Config.default ~n_replicas:5) with Config.q2_size = Some 9 };
  ok { (Config.default ~n_replicas:9) with Config.q2_size = Some 3 };
  bad { (Config.default ~n_replicas:5) with Config.epaxos_penalty = 0.5 };
  bad { (Config.default ~n_replicas:5) with Config.fz = -1 };
  bad { (Config.default ~n_replicas:5) with Config.client_timeout_ms = 0.0 }

let test_config_quorums () =
  let c = Config.default ~n_replicas:9 in
  Alcotest.(check int) "majority" 5 (Config.majority c);
  Alcotest.(check int) "default q2" 5 (Config.phase2_quorum_size c);
  let c = { c with Config.q2_size = Some 3 } in
  Alcotest.(check int) "fpaxos q2" 3 (Config.phase2_quorum_size c)

let suite =
  ( "store",
    [
      Alcotest.test_case "command conflicts" `Quick test_conflicts;
      Alcotest.test_case "command accessors" `Quick test_command_accessors;
      Alcotest.test_case "kv versions" `Quick test_kv_versions;
      Alcotest.test_case "kv keys" `Quick test_kv_keys;
      Alcotest.test_case "state machine apply" `Quick test_state_machine_apply;
      Alcotest.test_case "state machine noop" `Quick test_state_machine_noop;
      Alcotest.test_case "key history" `Quick test_key_history;
      Alcotest.test_case "executor dedup" `Quick test_executor_dedup;
      Alcotest.test_case "executor noop" `Quick test_executor_noop;
      Alcotest.test_case "executor distinct clients" `Quick test_executor_distinct_clients;
      Alcotest.test_case "ballot ordering" `Quick test_ballot_ordering;
      Alcotest.test_case "slot log basics" `Quick test_slot_log;
      Alcotest.test_case "slot log frontier" `Quick test_slot_log_frontier;
      Alcotest.test_case "slot log growth" `Quick test_slot_log_growth;
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "config quorums" `Quick test_config_quorums;
    ] )
