module WK = Paxi_protocols.Wankeeper
module H = Proto_harness.Make (Paxi_protocols.Wankeeper)

let put k v = Command.Put (k, v)
let get k = Command.Get k

(* master in Ohio (region index 1), as in the paper's experiments *)
let wan () =
  let config =
    { (Config.default ~n_replicas:9) with Config.master_region_index = 1 }
  in
  H.wan3 ~config ()

let test_roles () =
  let h = wan () in
  H.run_for h 10.0;
  Alcotest.(check bool) "replica 1 is master" true (WK.is_master (H.replica h 1));
  Alcotest.(check bool) "replica 0 leads VA" true (WK.is_zone_leader (H.replica h 0));
  Alcotest.(check bool) "replica 3 is plain member" false
    (WK.is_zone_leader (H.replica h 3))

let test_master_executes_first_accesses () =
  let h = wan () in
  let client = H.new_client h ~region:Region.virginia in
  let replies = H.submit_seq h ~client ~target:0 [ put 1 10 ] in
  Alcotest.(check int) "committed" 1 (List.length replies);
  (* a single access does not move the token; the master executed it *)
  Alcotest.(check int) "master replied" 1 (List.hd replies).Proto.replier;
  Alcotest.(check int) "no token at VA" 0 (WK.tokens_held (H.replica h 0))

let test_token_granted_on_settled_locality () =
  let h = wan () in
  let client = H.new_client h ~region:Region.virginia in
  ignore (H.submit_seq h ~client ~target:0 (List.init 8 (fun i -> put 1 i)));
  Alcotest.(check bool) "VA eventually holds token" true
    (WK.tokens_held (H.replica h 0) >= 1);
  Alcotest.(check bool) "master granted" true (WK.grants (H.replica h 1) >= 1);
  (* later accesses commit in-region and are answered by the VA leader *)
  let replies = H.submit_seq h ~client ~target:0 [ get 1 ] in
  Alcotest.(check int) "VA leader replies" 0 (List.hd replies).Proto.replier

let test_contention_retracts_token () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  let ca = H.new_client h ~region:Region.california in
  (* settle the token at VA *)
  ignore (H.submit_seq h ~client:va ~target:0 (List.init 6 (fun i -> put 2 i)));
  Alcotest.(check bool) "VA holds" true (WK.tokens_held (H.replica h 0) >= 1);
  (* CA now contends; master must retract *)
  ignore (H.submit_seq h ~client:ca ~target:2 (List.init 2 (fun i -> put 2 (100 + i))));
  Alcotest.(check bool) "retraction happened" true (WK.retractions (H.replica h 1) >= 1);
  Alcotest.(check int) "VA lost token" 0 (WK.tokens_held (H.replica h 0))

let test_values_survive_token_moves () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  let ca = H.new_client h ~region:Region.california in
  (* VA writes enough to win the token, then CA reads *)
  ignore (H.submit_seq h ~client:va ~target:0 (List.init 6 (fun i -> put 3 i)));
  let replies = H.submit_seq h ~client:ca ~target:2 [ get 3 ] in
  Alcotest.(check (option int)) "CA read sees VA's last write" (Some 5)
    (List.hd replies).Proto.read

let test_master_region_local_latency () =
  let h = wan () in
  let client = H.new_client h ~region:Region.ohio in
  ignore (H.submit_seq h ~client ~target:1 [ put 4 0 ]);
  let t0 = Sim.now (H.sim h) in
  ignore (H.submit_seq h ~client ~target:1 [ put 4 1 ]);
  let elapsed = Sim.now (H.sim h) -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "ohio commits locally (%.2f ms)" elapsed)
    true (elapsed < 11.0)

let test_many_keys_partition_across_regions () =
  let h = wan () in
  let clients =
    List.map (fun r -> (H.new_client h ~region:r, r))
      [ Region.virginia; Region.ohio; Region.california ]
  in
  List.iteri
    (fun i (c, _) ->
      ignore
        (H.submit_seq h ~client:c ~target:(i * 1)
           (List.init 12 (fun j -> put ((i * 10) + (j mod 3)) j))))
    clients;
  (* each non-master region ends up holding its own keys *)
  Alcotest.(check bool) "VA holds its keys" true (WK.tokens_held (H.replica h 0) >= 2);
  Alcotest.(check bool) "CA holds its keys" true (WK.tokens_held (H.replica h 2) >= 2)

let test_reads_after_writes_across_regions () =
  let h = wan () in
  let va = H.new_client h ~region:Region.virginia in
  let oh = H.new_client h ~region:Region.ohio in
  ignore (H.submit_seq h ~client:va ~target:0 [ put 5 42 ]);
  let replies = H.submit_seq h ~client:oh ~target:1 [ get 5 ] in
  Alcotest.(check (option int)) "ohio sees VA write" (Some 42)
    (List.hd replies).Proto.read

let suite =
  ( "wankeeper",
    [
      Alcotest.test_case "roles" `Quick test_roles;
      Alcotest.test_case "master executes first accesses" `Quick test_master_executes_first_accesses;
      Alcotest.test_case "token granted on settled locality" `Quick test_token_granted_on_settled_locality;
      Alcotest.test_case "contention retracts token" `Quick test_contention_retracts_token;
      Alcotest.test_case "values survive token moves" `Quick test_values_survive_token_moves;
      Alcotest.test_case "master region has local latency" `Quick test_master_region_local_latency;
      Alcotest.test_case "keys partition across regions" `Quick test_many_keys_partition_across_regions;
      Alcotest.test_case "cross-region read-your-writes" `Quick test_reads_after_writes_across_regions;
    ] )
