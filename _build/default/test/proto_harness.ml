(* Shared driving harness for per-protocol tests: build a small
   cluster, push sequences of commands through closed-loop test
   clients with retry, and inspect replica state afterwards. *)

module Make (P : Proto.RUNNABLE) = struct
  module C = Cluster.Make (P)

  type t = {
    cluster : C.t;
    sim : Sim.t;
    faults : Faults.t;
    config : Config.t;
    mutable next_client : int;
  }

  let make ?config ~topology () =
    let n = Topology.n_replicas topology in
    let config = match config with Some c -> c | None -> Config.default ~n_replicas:n in
    let faults = Faults.create () in
    let cluster = C.create ~faults ~config ~topology () in
    { cluster; sim = C.sim cluster; faults; config; next_client = 0 }

  let lan ?config ~n () = make ?config ~topology:(Topology.lan ~n_replicas:n ()) ()

  (* Three regions, three replicas each: the paper's 9-node WAN. *)
  let wan3 ?config () =
    make ?config
      ~topology:
        (Topology.wan
           ~regions:[ Region.virginia; Region.ohio; Region.california ]
           ~replicas_per_region:3 ())
      ()

  let replica t i = C.replica t.cluster i
  let sim t = t.sim
  let faults t = t.faults
  let leader_of_key t ~replica key = C.leader_of_key t.cluster ~replica key

  let new_client ?region t =
    let id = t.next_client in
    t.next_client <- id + 1;
    (match region with
    | Some r -> C.register_client t.cluster ~id ~region:r ()
    | None -> C.register_client t.cluster ~id ());
    id

  (* Issue [ops] one at a time from [client], retrying with rotating
     targets on timeout; returns the replies in order. Runs the
     simulation as far as needed (bounded by [deadline_ms]). *)
  let submit_seq ?(deadline_ms = 120_000.0) ?client ?(target = 0) t ops =
    let client = match client with Some c -> c | None -> new_client t in
    let n = t.config.Config.n_replicas in
    let replies = ref [] in
    let rec issue pending =
      match pending with
      | [] -> ()
      | (id, op) :: rest ->
          let command = Command.make ~id ~client op in
          let rec attempt k =
            C.submit t.cluster ~client ~target:((target + k) mod n) ~command
              ~on_reply:(fun reply ->
                replies := reply :: !replies;
                issue rest);
            ignore
            @@ Sim.schedule_after t.sim ~delay:t.config.Config.client_timeout_ms
                 (fun () ->
                   if C.pending t.cluster ~client ~command && k < 50 then
                     attempt (k + 1))
          in
          attempt 0
    in
    ignore
      (Sim.schedule_at t.sim ~time:(Sim.now t.sim) (fun () ->
           issue (List.mapi (fun i op -> (i, op)) ops)));
    (* Step event-by-event and stop as soon as the last reply lands, so
       the virtual clock after this call reflects completion time. *)
    let want = List.length ops in
    let deadline = Sim.now t.sim +. deadline_ms in
    let continue = ref true in
    while !continue do
      if List.length !replies >= want || Sim.now t.sim >= deadline then
        continue := false
      else if not (Sim.step t.sim) then continue := false
    done;
    List.rev !replies

  let run_for t ms = Sim.run_until t.sim (Sim.now t.sim +. ms)

  let state_machine t i = Executor.state_machine (P.executor (replica t i))

  let applied_commands t i =
    List.filter
      (fun c -> not (Command.is_noop c))
      (State_machine.applied (state_machine t i))

  (* Common safety assertion: every pair of replicas agrees on a
     common prefix of every key's version history. Hierarchical
     protocols (WanKeeper, VPaxos) replicate only within a zone group,
     so pass [replicas] to scope the check to one group's members. *)
  let assert_consistent ?(msg = "replica histories agree") ?replicas t =
    let members =
      match replicas with
      | Some l -> l
      | None -> List.init t.config.Config.n_replicas Fun.id
    in
    let sms = List.map (fun i -> (i, state_machine t i)) members in
    let keys = Hashtbl.create 16 in
    List.iter
      (fun (_, sm) ->
        List.iter
          (fun k -> if k >= 0 then Hashtbl.replace keys k ())
          (Kv.keys (State_machine.store sm)))
      sms;
    let violations =
      Paxi_benchmark.Consensus_check.check ~state_machines:sms
        ~keys:(Hashtbl.fold (fun k () acc -> k :: acc) keys [])
    in
    Alcotest.(check int) msg 0 (List.length violations)
end
