(* End-to-end runs through the benchmark Runner: every protocol, LAN
   and WAN, with the offline checkers as the oracle. *)

open Paxi_benchmark

let lan_topology_for name n =
  (* multi-leader protocols need zones even "in LAN": give them three
     co-located zones with LAN-like latencies, as a single-AZ AWS
     deployment would *)
  if List.mem name [ "wpaxos"; "wankeeper"; "vpaxos" ] then
    Topology.custom
      ~replica_regions:
        (List.concat_map
           (fun z -> List.init (n / 3) (fun _ -> Region.make z))
           [ "az-a"; "az-b"; "az-c" ])
      ~rtt_ms:(fun _ _ -> 0.4271)
      ~jitter:0.02 ()
  else Topology.lan ~n_replicas:n ()

(* protocols without one global RSM (zone groups, or per-coordinator
   bookkeeping) are exempt from the cross-replica consensus check *)
let zone_scoped name = List.mem name [ "wankeeper"; "vpaxos"; "abd" ]

let run_one name ?(conflict = 0.0) ?(concurrency = 6) ?(duration = 1_500.0) () =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let n = 9 in
  let topology = lan_topology_for name n in
  let config = Config.default ~n_replicas:n in
  let workload =
    { Workload.default with Workload.keys = 40; conflict_ratio = conflict }
  in
  let client_specs =
    if List.mem name [ "wpaxos"; "wankeeper"; "vpaxos" ] then
      (* spread clients across the co-located zones *)
      List.map
        (fun z ->
          Runner.clients ~region:(Region.make z) ~target:Runner.Round_robin
            ~count:(Stdlib.max 1 (concurrency / 3))
            workload)
        [ "az-a"; "az-b"; "az-c" ]
    else
      [ Runner.clients ~target:Runner.Round_robin ~count:concurrency workload ]
  in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:duration ~collect_history:true
      ~check_consensus:(not (zone_scoped name))
      ~config ~topology ~client_specs ()
  in
  Runner.run (module P) spec

let check_linearizable name (result : Runner.result) =
  let anomalies = Linearizability.check result.Runner.history in
  List.iter
    (fun a ->
      Printf.printf "%s anomaly: %s\n" name a.Linearizability.reason)
    anomalies;
  Alcotest.(check int) (name ^ " linearizable") 0 (List.length anomalies)

let test_protocol_lan name () =
  let result = run_one name () in
  Alcotest.(check bool)
    (name ^ " made progress")
    true
    (result.Runner.throughput_rps > 100.0);
  Alcotest.(check int) (name ^ " nothing abandoned") 0 result.Runner.gave_up;
  check_linearizable name result;
  Alcotest.(check int)
    (name ^ " consensus clean")
    0
    (List.length result.Runner.consensus_violations)

let test_protocol_lan_with_conflicts name () =
  let result = run_one name ~conflict:0.4 () in
  Alcotest.(check bool) (name ^ " progressed") true (result.Runner.throughput_rps > 50.0);
  check_linearizable (name ^ "+conflict") result

let wan_spec name ~locality =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let regions = [ Region.virginia; Region.ohio; Region.california ] in
  let topology = Topology.wan ~regions ~replicas_per_region:3 () in
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.master_region_index = 1;
      initial_object_owner =
        (if List.mem name [ "wpaxos"; "wankeeper"; "vpaxos" ] then Some 1 else None);
    }
  in
  let client_specs =
    List.mapi
      (fun i region ->
        let workload =
          let base = { Workload.default with Workload.keys = 60 } in
          if locality then Workload.with_locality base ~region_index:i ~regions:3
          else base
        in
        Runner.clients ~region ~count:2 workload)
      regions
  in
  ( (module P : Proto.RUNNABLE),
    Runner.spec ~warmup_ms:500.0 ~duration_ms:3_000.0 ~collect_history:true
      ~config ~topology ~client_specs () )

let test_protocol_wan name () =
  let p, spec = wan_spec name ~locality:true in
  let result = Runner.run p spec in
  Alcotest.(check bool) (name ^ " wan progress") true (result.Runner.throughput_rps > 10.0);
  check_linearizable (name ^ "@wan") result

let test_paxos_crash_recovery_e2e () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let topology = Topology.lan ~n_replicas:5 () in
  let config = Config.default ~n_replicas:5 in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:12_000.0 ~collect_history:true
      ~check_consensus:true
      ~faults:(fun f ->
        Faults.crash f ~node:(Address.replica 0) ~from_ms:2_000.0
          ~duration_ms:60_000.0)
      ~config ~topology
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:4
            { Workload.default with Workload.keys = 20 } ]
      ()
  in
  let result = Runner.run (module P) spec in
  Alcotest.(check bool) "progress despite crash" true (result.Runner.throughput_rps > 100.0);
  check_linearizable "paxos+crash" result;
  Alcotest.(check int) "consensus clean" 0
    (List.length result.Runner.consensus_violations)

let test_flaky_network_e2e () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let topology = Topology.lan ~n_replicas:5 () in
  let config = Config.default ~n_replicas:5 in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:6_000.0 ~collect_history:true
      ~check_consensus:true
      ~faults:(fun f ->
        (* drop 20% of leader->follower traffic on two links *)
        Faults.flaky f ~src:(Address.replica 0) ~dst:(Address.replica 1)
          ~from_ms:0.0 ~duration_ms:60_000.0 ~p_drop:0.2;
        Faults.flaky f ~src:(Address.replica 0) ~dst:(Address.replica 2)
          ~from_ms:0.0 ~duration_ms:60_000.0 ~p_drop:0.2)
      ~config ~topology
      ~client_specs:
        [ Runner.clients ~target:(Runner.Fixed 0) ~count:2
            { Workload.default with Workload.keys = 10 } ]
      ()
  in
  let result = Runner.run (module P) spec in
  check_linearizable "paxos+flaky" result;
  Alcotest.(check int) "consensus clean" 0
    (List.length result.Runner.consensus_violations)

let test_runner_reports_busiest_node () =
  let result = run_one "paxos" () in
  (* single-leader: the leader (replica 0) must be the busiest node *)
  Alcotest.(check int) "leader busiest" 0 result.Runner.busiest_node;
  Alcotest.(check bool) "non-trivial load" true (result.Runner.busiest_node_busy_ms > 0.0)

let test_saturation_sweep_shape () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let make_spec ~concurrency =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:1_000.0
      ~config:(Config.default ~n_replicas:5)
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:concurrency Workload.default ]
      ()
  in
  let results =
    Runner.saturation_sweep (module P) ~make_spec ~concurrencies:[ 1; 16 ]
  in
  match results with
  | [ (1, low); (16, high) ] ->
      Alcotest.(check bool) "throughput grows" true
        (high.Runner.throughput_rps > 2.0 *. low.Runner.throughput_rps);
      Alcotest.(check bool) "latency grows" true
        (Stats.mean high.Runner.latency > Stats.mean low.Runner.latency)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_open_loop_rate () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let rate = 2_000.0 in
  let spec =
    Runner.spec ~warmup_ms:500.0 ~duration_ms:4_000.0
      ~config:(Config.default ~n_replicas:5)
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:(Runner.Fixed 0)
            ~arrival:(Runner.Open { rate_per_sec = rate /. 2.0 })
            ~count:2 Workload.default ]
      ()
  in
  let r = Runner.run (module P) spec in
  (* open loop delivers the offered rate (it is well under capacity) *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput ~%.0f (got %.0f)" rate r.Runner.throughput_rps)
    true
    (Float.abs (r.Runner.throughput_rps -. rate) /. rate < 0.1);
  Alcotest.(check int) "no losses" 0 r.Runner.gave_up

let suite =
  let protocols = Paxi_protocols.Registry.names in
  ( "integration",
    List.map
      (fun name ->
        Alcotest.test_case (name ^ " lan e2e") `Slow (test_protocol_lan name))
      protocols
    @ List.map
        (fun name ->
          Alcotest.test_case (name ^ " lan conflicts") `Slow
            (test_protocol_lan_with_conflicts name))
        [ "paxos"; "epaxos"; "wpaxos" ]
    @ List.map
        (fun name ->
          Alcotest.test_case (name ^ " wan locality") `Slow (test_protocol_wan name))
        protocols
    @ [
        Alcotest.test_case "paxos crash recovery e2e" `Slow test_paxos_crash_recovery_e2e;
        Alcotest.test_case "paxos flaky network e2e" `Slow test_flaky_network_e2e;
        Alcotest.test_case "busiest node is the leader" `Slow test_runner_reports_busiest_node;
        Alcotest.test_case "saturation sweep shape" `Slow test_saturation_sweep_shape;
        Alcotest.test_case "open-loop arrival rate" `Slow test_open_loop_rate;
      ] )
