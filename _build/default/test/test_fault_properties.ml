(* Property-based fault robustness: random fault schedules against
   Paxos and Raft; the offline checkers are the oracle. Each QCheck
   case builds a fault plan from the generated seed, runs a short
   cluster workload, and requires client-observed linearizability and
   replica agreement. *)

open Paxi_benchmark

type fault_plan = {
  seed : int;
  crash_replica : int option;
  crash_at : float;
  flaky_links : (int * int) list;
  p_drop : float;
  slow_links : (int * int) list;
}

let plan_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* crash = opt (int_range 0 4) in
    let* crash_at = float_range 500.0 3_000.0 in
    let* n_flaky = int_range 0 3 in
    let* flaky_links =
      list_size (return n_flaky) (pair (int_range 0 4) (int_range 0 4))
    in
    let* p_drop = float_range 0.05 0.3 in
    let* n_slow = int_range 0 2 in
    let* slow_links =
      list_size (return n_slow) (pair (int_range 0 4) (int_range 0 4))
    in
    return { seed; crash_replica = crash; crash_at; flaky_links; p_drop; slow_links })

let plan_print p =
  Printf.sprintf "seed=%d crash=%s@%.0f flaky=%s p=%.2f slow=%s" p.seed
    (match p.crash_replica with Some r -> string_of_int r | None -> "-")
    p.crash_at
    (String.concat ","
       (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) p.flaky_links))
    p.p_drop
    (String.concat ","
       (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) p.slow_links))

let run_under_faults (module P : Proto.RUNNABLE) plan =
  let n = 5 in
  let config = { (Config.default ~n_replicas:n) with Config.seed = plan.seed } in
  let spec =
    Runner.spec ~warmup_ms:200.0 ~duration_ms:6_000.0 ~cooldown_ms:2_000.0
      ~collect_history:true ~check_consensus:true
      ~faults:(fun f ->
        (match plan.crash_replica with
        | Some r ->
            Faults.crash f ~node:(Address.replica r) ~from_ms:plan.crash_at
              ~duration_ms:30_000.0
        | None -> ());
        List.iter
          (fun (a, b) ->
            if a <> b then
              Faults.flaky f ~src:(Address.replica a) ~dst:(Address.replica b)
                ~from_ms:0.0 ~duration_ms:60_000.0 ~p_drop:plan.p_drop)
          plan.flaky_links;
        List.iter
          (fun (a, b) ->
            if a <> b then
              Faults.slow f ~src:(Address.replica a) ~dst:(Address.replica b)
                ~from_ms:0.0 ~duration_ms:60_000.0 ~extra_ms:5.0)
          plan.slow_links)
      ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:
        [
          Runner.clients ~target:Runner.Round_robin ~count:3
            { Workload.default with Workload.keys = 15 };
        ]
      ()
  in
  Runner.run (module P) spec

let safety_holds p result =
  let anomalies = Linearizability.check result.Runner.history in
  if anomalies <> [] then begin
    Printf.printf "plan %s: %d anomalies, e.g. %s\n" (plan_print p)
      (List.length anomalies)
      (List.hd anomalies).Linearizability.reason;
    false
  end
  else if result.Runner.consensus_violations <> [] then begin
    Printf.printf "plan %s: consensus violations\n" (plan_print p);
    false
  end
  else true

let prop_paxos_safe_under_faults =
  QCheck.Test.make ~name:"paxos linearizable under random faults" ~count:8
    (QCheck.make ~print:plan_print plan_gen)
    (fun plan ->
      safety_holds plan
        (run_under_faults (Paxi_protocols.Registry.find_exn "paxos") plan))

let prop_raft_safe_under_faults =
  QCheck.Test.make ~name:"raft linearizable under random faults" ~count:8
    (QCheck.make ~print:plan_print plan_gen)
    (fun plan ->
      safety_holds plan
        (run_under_faults (Paxi_protocols.Registry.find_exn "raft") plan))

let prop_epaxos_safe_under_flaky =
  QCheck.Test.make ~name:"epaxos linearizable under flaky links" ~count:6
    (QCheck.make ~print:plan_print plan_gen)
    (fun plan ->
      (* EPaxos has no recovery: flaky/slow links only, no crashes *)
      let plan = { plan with crash_replica = None } in
      safety_holds plan
        (run_under_faults (Paxi_protocols.Registry.find_exn "epaxos") plan))

let suite =
  ( "fault_properties",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_paxos_safe_under_faults;
      QCheck_alcotest.to_alcotest ~long:false prop_raft_safe_under_faults;
      QCheck_alcotest.to_alcotest ~long:false prop_epaxos_safe_under_flaky;
    ] )
