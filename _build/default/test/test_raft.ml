module R = Paxi_protocols.Raft
module H = Proto_harness.Make (Paxi_protocols.Raft)

let put k v = Command.Put (k, v)
let get k = Command.Get k

let test_elects_initial_leader () =
  let h = H.lan ~n:5 () in
  H.run_for h 200.0;
  Alcotest.(check bool) "r0 leads" true (R.role (H.replica h 0) = R.Leader);
  Alcotest.(check int) "term 1" 1 (R.current_term (H.replica h 0))

let test_commits_and_reads () =
  let h = H.lan ~n:5 () in
  let replies = H.submit_seq h [ put 1 10; get 1; put 1 11; get 1 ] in
  Alcotest.(check int) "all" 4 (List.length replies);
  Alcotest.(check (list int)) "reads" [ 10; 11 ]
    (List.filter_map (fun (r : Proto.reply) -> r.Proto.read) replies)

let test_leader_crash_new_term () =
  let h = H.lan ~n:5 () in
  H.run_for h 200.0;
  Faults.crash (H.faults h) ~node:(Address.replica 0)
    ~from_ms:(Sim.now (H.sim h)) ~duration_ms:600_000.0;
  let replies = H.submit_seq h ~target:1 (List.init 10 (fun i -> put i i)) in
  Alcotest.(check int) "progress after crash" 10 (List.length replies);
  let leader = List.find_opt (fun i -> R.role (H.replica h i) = R.Leader) [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "survivor leads" true (leader <> None);
  Alcotest.(check bool) "term advanced" true
    (R.current_term (H.replica h (Option.get leader)) >= 2);
  H.assert_consistent h

let test_log_matching_after_heal () =
  let h = H.lan ~n:5 () in
  H.run_for h 200.0;
  ignore (H.submit_seq h [ put 0 0; put 1 1 ]);
  (* partition a follower away, commit more, then heal *)
  let r = Address.replica in
  Faults.partition (H.faults h)
    ~groups:[ [ r 0; r 1; r 2; r 3 ]; [ r 4 ] ]
    ~from_ms:(Sim.now (H.sim h)) ~duration_ms:5_000.0;
  ignore (H.submit_seq h [ put 2 2; put 3 3; put 4 4 ]);
  (* after healing, heartbeats must repair replica 4's log *)
  H.run_for h 20_000.0;
  Alcotest.(check int) "replica 4 caught up" 5
    (List.length (H.applied_commands h 4));
  H.assert_consistent h

let test_stale_candidate_cannot_win () =
  let h = H.lan ~n:5 () in
  H.run_for h 200.0;
  ignore (H.submit_seq h (List.init 5 (fun i -> put i i)));
  (* isolate replica 4 so it misses entries, let it rejoin: its
     election attempts with a stale log must fail *)
  let r = Address.replica in
  Faults.partition (H.faults h)
    ~groups:[ [ r 0; r 1; r 2; r 3 ]; [ r 4 ] ]
    ~from_ms:(Sim.now (H.sim h)) ~duration_ms:8_000.0;
  ignore (H.submit_seq h (List.init 5 (fun i -> put (10 + i) i)));
  H.run_for h 20_000.0;
  (* replica 4 may have bumped terms while isolated, but all committed
     entries must survive *)
  ignore (H.submit_seq h [ get 10 ]);
  H.run_for h 5_000.0;
  H.assert_consistent h;
  Alcotest.(check bool) "someone leads" true
    (List.exists (fun i -> R.role (H.replica h i) = R.Leader) [ 0; 1; 2; 3; 4 ])

let test_noop_barrier_commits_tail () =
  (* commands committed by a crashed leader must eventually execute on
     survivors even with no further client traffic *)
  let h = H.lan ~n:5 () in
  H.run_for h 200.0;
  ignore (H.submit_seq h (List.init 5 (fun i -> put i i)));
  Faults.crash (H.faults h) ~node:(Address.replica 0)
    ~from_ms:(Sim.now (H.sim h)) ~duration_ms:600_000.0;
  H.run_for h 30_000.0;
  for i = 1 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d has all 5" i)
      5
      (List.length (H.applied_commands h i))
  done

let test_follower_forwards () =
  let h = H.lan ~n:3 () in
  H.run_for h 200.0;
  let replies = H.submit_seq h ~target:2 [ put 5 50; get 5 ] in
  Alcotest.(check int) "forwarded and committed" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 50) (List.nth replies 1).Proto.read

let test_log_introspection () =
  let h = H.lan ~n:3 () in
  ignore (H.submit_seq h [ put 1 1 ]);
  H.run_for h 500.0;
  let r0 = H.replica h 0 in
  Alcotest.(check bool) "log non-empty" true (R.log_length r0 >= 1);
  Alcotest.(check (option int)) "term of slot 0" (Some 1) (R.log_term_at r0 0);
  Alcotest.(check bool) "commit index" true (R.commit_index r0 >= 1)

let suite =
  ( "raft",
    [
      Alcotest.test_case "elects initial leader" `Quick test_elects_initial_leader;
      Alcotest.test_case "commits and reads" `Quick test_commits_and_reads;
      Alcotest.test_case "leader crash advances term" `Quick test_leader_crash_new_term;
      Alcotest.test_case "log repair after partition" `Quick test_log_matching_after_heal;
      Alcotest.test_case "stale candidate cannot win" `Quick test_stale_candidate_cannot_win;
      Alcotest.test_case "no-op barrier commits tail" `Quick test_noop_barrier_commits_tail;
      Alcotest.test_case "follower forwards" `Quick test_follower_forwards;
      Alcotest.test_case "log introspection" `Quick test_log_introspection;
    ] )
