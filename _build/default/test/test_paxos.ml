module P = Paxi_protocols.Paxos
module H = Proto_harness.Make (Paxi_protocols.Paxos)

let put k v = Command.Put (k, v)
let get k = Command.Get k

let test_commits_and_replies () =
  let h = H.lan ~n:5 () in
  let replies = h |> fun h -> H.submit_seq h [ put 1 10; get 1; put 2 20; get 2 ] in
  Alcotest.(check int) "all replied" 4 (List.length replies);
  let reads = List.filter_map (fun (r : Proto.reply) -> r.Proto.read) replies in
  Alcotest.(check (list int)) "reads see writes" [ 10; 20 ] reads

let test_replica_zero_becomes_leader () =
  let h = H.lan ~n:5 () in
  H.run_for h 100.0;
  Alcotest.(check bool) "r0 leads" true (P.is_leader (H.replica h 0));
  Alcotest.(check bool) "r1 follows" false (P.is_leader (H.replica h 1))

let test_followers_learn_commits () =
  let h = H.lan ~n:5 () in
  let ops = List.init 20 (fun i -> put (i mod 4) i) in
  ignore (H.submit_seq h ops);
  (* heartbeats propagate the tail commit *)
  H.run_for h 2_000.0;
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d applied all" i)
      20
      (List.length (H.applied_commands h i))
  done;
  H.assert_consistent h

let test_forwarding_from_follower () =
  let h = H.lan ~n:5 () in
  H.run_for h 100.0;
  (* target a follower; the request must still commit via the leader *)
  let replies = H.submit_seq h ~target:3 [ put 7 70; get 7 ] in
  Alcotest.(check int) "replied" 2 (List.length replies);
  let r = List.nth replies 1 in
  Alcotest.(check (option int)) "read" (Some 70) r.Proto.read

let test_leader_crash_failover () =
  let h = H.lan ~n:5 () in
  H.run_for h 100.0;
  Faults.crash (H.faults h) ~node:(Address.replica 0)
    ~from_ms:(Sim.now (H.sim h))
    ~duration_ms:600_000.0;
  let replies = H.submit_seq h ~target:1 (List.init 10 (fun i -> put i i)) in
  Alcotest.(check int) "all commands survive failover" 10 (List.length replies);
  (* some survivor took over *)
  let new_leader = List.exists (fun i -> P.is_leader (H.replica h i)) [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "new leader elected" true new_leader;
  H.assert_consistent h

let test_no_commit_without_majority () =
  let h = H.lan ~n:5 () in
  H.run_for h 100.0;
  (* isolate the leader with 3 crashed followers: no majority *)
  List.iter
    (fun i ->
      Faults.crash (H.faults h) ~node:(Address.replica i)
        ~from_ms:(Sim.now (H.sim h))
        ~duration_ms:30_000.0)
    [ 2; 3; 4 ];
  let client = H.new_client h in
  let command = Command.make ~id:0 ~client (put 1 1) in
  let module C = H.C in
  let got = ref false in
  C.submit h.H.cluster ~client ~target:0 ~command ~on_reply:(fun _ -> got := true);
  H.run_for h 5_000.0;
  Alcotest.(check bool) "no reply without quorum" false !got;
  (* replicas recover; retransmission is the client's job, so resend *)
  H.run_for h 30_000.0;
  C.submit h.H.cluster ~client ~target:0 ~command ~on_reply:(fun _ -> got := true);
  H.run_for h 10_000.0;
  Alcotest.(check bool) "commits after heal" true !got

let test_duplicate_submission_executes_once () =
  let h = H.lan ~n:3 () in
  H.run_for h 100.0;
  let client = H.new_client h in
  let module C = H.C in
  let command = Command.make ~id:0 ~client (put 1 1) in
  let replies = ref 0 in
  C.submit h.H.cluster ~client ~target:0 ~command ~on_reply:(fun _ -> incr replies);
  H.run_for h 500.0;
  C.submit h.H.cluster ~client ~target:0 ~command ~on_reply:(fun _ -> incr replies);
  H.run_for h 2_000.0;
  (* the state machine applied the write once *)
  let writers = State_machine.key_history (H.state_machine h 0) 1 in
  Alcotest.(check int) "single version" 1 (List.length writers)

let test_fpaxos_small_quorum_commits () =
  let config =
    { (Config.default ~n_replicas:9) with Config.q2_size = Some 3 }
  in
  let h = H.lan ~config ~n:9 () in
  let replies = H.submit_seq h [ put 1 10; get 1 ] in
  Alcotest.(check int) "works with q2=3" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 10) (List.nth replies 1).Proto.read

let test_fpaxos_module_defaults () =
  Alcotest.(check int) "paper q2 for 9 nodes" 3 (Paxi_protocols.Fpaxos.default_q2 ~n:9);
  let module HF = Proto_harness.Make (Paxi_protocols.Fpaxos) in
  let h = HF.lan ~n:9 () in
  let replies = HF.submit_seq h [ put 1 1; get 1 ] in
  Alcotest.(check int) "fpaxos commits" 2 (List.length replies)

let test_thrifty_commits () =
  let config = { (Config.default ~n_replicas:5) with Config.thrifty = true } in
  let h = H.lan ~config ~n:5 () in
  let replies = H.submit_seq h (List.init 10 (fun i -> put i i)) in
  Alcotest.(check int) "thrifty works" 10 (List.length replies)

let test_explicit_commit_mode () =
  let config =
    { (Config.default ~n_replicas:5) with Config.piggyback_commit = false }
  in
  let h = H.lan ~config ~n:5 () in
  ignore (H.submit_seq h (List.init 10 (fun i -> put i i)));
  H.run_for h 1_000.0;
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d" i)
      10
      (List.length (H.applied_commands h i))
  done

let test_wan_paxos () =
  let h = H.wan3 () in
  let replies = H.submit_seq h [ put 1 10; get 1 ] in
  Alcotest.(check int) "commits over WAN" 2 (List.length replies);
  (* majority of 9 across VA/OH/CA needs cross-region round trips *)
  H.assert_consistent h

let suite =
  ( "paxos",
    [
      Alcotest.test_case "commits and replies" `Quick test_commits_and_replies;
      Alcotest.test_case "replica 0 becomes leader" `Quick test_replica_zero_becomes_leader;
      Alcotest.test_case "followers learn commits" `Quick test_followers_learn_commits;
      Alcotest.test_case "follower forwards to leader" `Quick test_forwarding_from_follower;
      Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
      Alcotest.test_case "no commit without majority" `Quick test_no_commit_without_majority;
      Alcotest.test_case "duplicate executes once" `Quick test_duplicate_submission_executes_once;
      Alcotest.test_case "fpaxos small quorum" `Quick test_fpaxos_small_quorum_commits;
      Alcotest.test_case "fpaxos module defaults" `Quick test_fpaxos_module_defaults;
      Alcotest.test_case "thrifty mode" `Quick test_thrifty_commits;
      Alcotest.test_case "explicit commit mode" `Quick test_explicit_commit_mode;
      Alcotest.test_case "wan deployment" `Quick test_wan_paxos;
    ] )
