let test_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> log := "a" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.schedule_at sim ~time:5.0 (fun () -> seen := Sim.now sim :: !seen));
  ignore (Sim.schedule_at sim ~time:10.0 (fun () -> seen := Sim.now sim :: !seen));
  Sim.run sim;
  Alcotest.(check (list (float 0.0))) "clock at events" [ 5.0; 10.0 ] (List.rev !seen)

let test_schedule_after () =
  let sim = Sim.create () in
  let fired_at = ref 0.0 in
  ignore
    (Sim.schedule_at sim ~time:3.0 (fun () ->
         ignore (Sim.schedule_after sim ~delay:2.0 (fun () -> fired_at := Sim.now sim))));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "relative" 5.0 !fired_at

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:1.0 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired

let test_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.schedule_at sim ~time:t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run_until sim 2.5;
  Alcotest.(check (list (float 0.0))) "only before horizon" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at horizon" 2.5 (Sim.now sim);
  Sim.run_until sim 10.0;
  Alcotest.(check int) "rest fired" 4 (List.length !fired)

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  Sim.run_until sim 5.0;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time 1 < now 5")
    (fun () -> ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ())))

let test_negative_delay_clamped () =
  let sim = Sim.create () in
  Sim.run_until sim 5.0;
  let fired = ref false in
  ignore (Sim.schedule_after sim ~delay:(-3.0) (fun () -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "fired now" true !fired

let test_cascading_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Sim.schedule_after sim ~delay:1.0 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 100;
  Sim.run sim;
  Alcotest.(check int) "all fired" 100 !count;
  Alcotest.(check (float 0.0)) "time" 100.0 (Sim.now sim)

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ()));
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

let test_pending () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1.0 (fun () -> ()));
  ignore (Sim.schedule_at sim ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.pending sim)

let suite =
  ( "sim",
    [
      Alcotest.test_case "schedule order" `Quick test_schedule_order;
      Alcotest.test_case "clock advances" `Quick test_clock_advances;
      Alcotest.test_case "schedule_after is relative" `Quick test_schedule_after;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "run_until horizon" `Quick test_run_until_horizon;
      Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
      Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
      Alcotest.test_case "cascading events" `Quick test_cascading_events;
      Alcotest.test_case "step" `Quick test_step;
      Alcotest.test_case "pending" `Quick test_pending;
    ] )
