let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.(check (pair (float 0.0) string)) "first" (1.0, "a") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "second" (2.0, "b") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "third" (3.0, "c") (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.pop q = None)

let test_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  for i = 0 to 9 do
    let _, v = Option.get (Event_queue.pop q) in
    Alcotest.(check int) "fifo" i v
  done

let test_interleaved_push_pop () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5.0 "late";
  Event_queue.push q ~time:1.0 "early";
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "early first" "early" v;
  Event_queue.push q ~time:2.0 "mid";
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "mid next" "mid" v

let test_length_and_clear () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  for i = 1 to 100 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "length" 100 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "none" None (Event_queue.peek_time q);
  Event_queue.push q ~time:4.2 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 4.2) (Event_queue.peek_time q);
  Alcotest.(check int) "peek does not pop" 1 (Event_queue.length q)

let prop_heap_sorted =
  QCheck.Test.make ~name:"pop yields non-decreasing times" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let suite =
  ( "event_queue",
    [
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo on equal times" `Quick test_fifo_on_ties;
      Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
      Alcotest.test_case "length and clear" `Quick test_length_and_clear;
      Alcotest.test_case "peek" `Quick test_peek;
      QCheck_alcotest.to_alcotest prop_heap_sorted;
    ] )
