module E = Paxi_protocols.Epaxos
module H = Proto_harness.Make (Paxi_protocols.Epaxos)

let put k v = Command.Put (k, v)
let get k = Command.Get k

let test_commits_without_leader () =
  let h = H.lan ~n:5 () in
  (* every replica can lead: send each op to a different node *)
  let client = H.new_client h in
  let replies = ref 0 in
  let module C = H.C in
  for i = 0 to 9 do
    let command = Command.make ~id:i ~client (put i i) in
    C.submit h.H.cluster ~client ~target:(i mod 5) ~command
      ~on_reply:(fun _ -> incr replies)
  done;
  H.run_for h 10_000.0;
  Alcotest.(check int) "all committed" 10 !replies

let test_fast_path_on_disjoint_keys () =
  let h = H.lan ~n:5 () in
  ignore (H.submit_seq h ~target:0 (List.init 10 (fun i -> put i i)));
  let r0 = H.replica h 0 in
  Alcotest.(check int) "all fast" 10 (E.fast_path_count r0);
  Alcotest.(check int) "no slow" 0 (E.slow_path_count r0)

let test_conflicts_take_slow_path () =
  let h = H.lan ~n:5 () in
  let module C = H.C in
  let client = H.new_client h in
  let replies = ref 0 in
  (* two writers to the same key from different command leaders,
     submitted simultaneously: at least one sees a dependency mismatch *)
  for round = 0 to 19 do
    let a = Command.make ~id:(2 * round) ~client (put 0 round) in
    let b = Command.make ~id:(2 * round + 1) ~client (put 0 (1000 + round)) in
    let t = Sim.now (H.sim h) +. (float_of_int round *. 50.0) in
    ignore
      (Sim.schedule_at (H.sim h) ~time:t (fun () ->
           C.submit h.H.cluster ~client ~target:0 ~command:a ~on_reply:(fun _ -> incr replies);
           C.submit h.H.cluster ~client ~target:3 ~command:b ~on_reply:(fun _ -> incr replies)))
  done;
  H.run_for h 60_000.0;
  Alcotest.(check int) "all commit despite conflicts" 40 !replies;
  let slow =
    E.slow_path_count (H.replica h 0) + E.slow_path_count (H.replica h 3)
  in
  Alcotest.(check bool) "some rounds were slow" true (slow > 0);
  H.assert_consistent h

let test_histories_converge_under_conflict () =
  let h = H.lan ~n:5 () in
  let module C = H.C in
  let total = ref 0 in
  for c = 0 to 2 do
    let client = H.new_client h in
    for i = 0 to 29 do
      let command = Command.make ~id:i ~client (put (i mod 2) ((c * 100) + i)) in
      ignore
        (Sim.schedule_at (H.sim h)
           ~time:(float_of_int i *. 3.0)
           (fun () ->
             C.submit h.H.cluster ~client ~target:c ~command ~on_reply:(fun _ -> incr total)))
    done
  done;
  H.run_for h 60_000.0;
  Alcotest.(check int) "all commit" 90 !total;
  H.run_for h 5_000.0;
  H.assert_consistent h;
  (* all replicas executed every instance *)
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d executed" i)
      90
      (Executor.executed_count (E.executor (H.replica h i)))
  done

let test_reads_linearize () =
  let h = H.lan ~n:5 () in
  let replies = H.submit_seq h ~target:1 [ put 1 10; get 1; put 1 20; get 1 ] in
  Alcotest.(check (list int)) "reads in order" [ 10; 20 ]
    (List.filter_map (fun (r : Proto.reply) -> r.Proto.read) replies)

let test_interleaved_read_write_same_key () =
  (* reads and writes to one key from different leaders, sequentially:
     every read must observe the immediately preceding write *)
  let h = H.lan ~n:5 () in
  let module C = H.C in
  let client = H.new_client h in
  let expected = ref [] and got = ref [] in
  let rec step i =
    if i < 20 then begin
      let write = Command.make ~id:(2 * i) ~client (put 0 i) in
      C.submit h.H.cluster ~client ~target:(i mod 5) ~command:write
        ~on_reply:(fun _ ->
          let read = Command.make ~id:(2 * i + 1) ~client (get 0) in
          C.submit h.H.cluster ~client ~target:((i + 2) mod 5) ~command:read
            ~on_reply:(fun r ->
              expected := i :: !expected;
              got := Option.value r.Proto.read ~default:(-1) :: !got;
              step (i + 1)))
    end
  in
  ignore (Sim.schedule_at (H.sim h) ~time:1.0 (fun () -> step 0));
  H.run_for h 60_000.0;
  Alcotest.(check (list int)) "each read sees preceding write" !expected !got

let test_no_commit_without_fast_or_majority () =
  let h = H.lan ~n:5 () in
  (* crash 3 nodes: neither fast quorum (4) nor majority (3) possible *)
  List.iter
    (fun i ->
      Faults.crash (H.faults h) ~node:(Address.replica i) ~from_ms:0.0
        ~duration_ms:10_000.0)
    [ 2; 3; 4 ];
  let module C = H.C in
  let client = H.new_client h in
  let got = ref false in
  let command = Command.make ~id:0 ~client (put 1 1) in
  ignore
    (Sim.schedule_at (H.sim h) ~time:1.0 (fun () ->
         C.submit h.H.cluster ~client ~target:0 ~command ~on_reply:(fun _ -> got := true)));
  H.run_for h 5_000.0;
  Alcotest.(check bool) "stalled" false !got

let suite =
  ( "epaxos",
    [
      Alcotest.test_case "commits without a leader" `Quick test_commits_without_leader;
      Alcotest.test_case "fast path on disjoint keys" `Quick test_fast_path_on_disjoint_keys;
      Alcotest.test_case "conflicts take slow path" `Quick test_conflicts_take_slow_path;
      Alcotest.test_case "histories converge under conflict" `Quick test_histories_converge_under_conflict;
      Alcotest.test_case "reads linearize" `Quick test_reads_linearize;
      Alcotest.test_case "interleaved rw same key" `Quick test_interleaved_read_write_same_key;
      Alcotest.test_case "no commit without quorum" `Quick test_no_commit_without_fast_or_majority;
    ] )
