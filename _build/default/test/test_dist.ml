let rng () = Rng.create ~seed:99

let test_constant () =
  let d = Dist.constant 3.5 in
  let r = rng () in
  for _ = 1 to 10 do
    Alcotest.(check (float 0.0)) "constant" 3.5 (Dist.sample d r)
  done

let test_shifted_scaled () =
  let d = Dist.scaled (Dist.shifted (Dist.constant 2.0) ~by:1.0) ~by:10.0 in
  Alcotest.(check (float 0.0)) "(2+1)*10" 30.0 (Dist.sample d (rng ()))

let test_mean_estimate () =
  let d = Dist.uniform ~lo:0.0 ~hi:10.0 in
  let m = Dist.mean_estimate d (rng ()) ~n:20_000 in
  Alcotest.(check bool) "~5" true (Float.abs (m -. 5.0) < 0.2)

let test_discrete_uniform_range () =
  let d = Dist.Discrete.uniform ~k:10 in
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Dist.Discrete.sample d r ~now_ms:0.0 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_discrete_uniform_covers () =
  let d = Dist.Discrete.uniform ~k:5 in
  let r = rng () in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Dist.Discrete.sample d r ~now_ms:0.0) <- true
  done;
  Alcotest.(check bool) "all keys seen" true (Array.for_all Fun.id seen)

let histogram_of d ~k ~n =
  let r = rng () in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let x = Dist.Discrete.sample d r ~now_ms:0.0 in
    counts.(x) <- counts.(x) + 1
  done;
  counts

let test_zipf_head_heavy () =
  let k = 100 in
  let counts = histogram_of (Dist.Discrete.zipfian ~k ~s:2.0 ~v:1.0) ~k ~n:20_000 in
  Alcotest.(check bool) "key 0 most popular" true
    (Array.for_all (fun c -> counts.(0) >= c) counts);
  Alcotest.(check bool) "head dominates tail" true
    (counts.(0) > 10 * Stdlib.max 1 counts.(50))

let test_exponential_decay () =
  let k = 100 in
  let counts = histogram_of (Dist.Discrete.exponential ~k ~mean:10.0) ~k ~n:20_000 in
  Alcotest.(check bool) "front heavier than back" true
    (counts.(0) + counts.(1) > counts.(60) + counts.(61))

let test_normal_centred () =
  let k = 100 in
  let counts = histogram_of (Dist.Discrete.normal ~k ~mu:50.0 ~sigma:5.0) ~k ~n:20_000 in
  let centre = counts.(48) + counts.(49) + counts.(50) + counts.(51) + counts.(52) in
  let edge = counts.(0) + counts.(1) + counts.(98) + counts.(99) in
  Alcotest.(check bool) "mass at centre" true (centre > 50 * Stdlib.max 1 edge)

let test_moving_mean_shifts () =
  let k = 100 in
  let base = Dist.Discrete.normal ~k ~mu:10.0 ~sigma:2.0 in
  let moving = Dist.Discrete.with_moving_mean base ~speed_ms:100.0 ~drift:10.0 in
  let r = rng () in
  let avg_at now_ms =
    let acc = ref 0 in
    for _ = 1 to 2000 do
      acc := !acc + Dist.Discrete.sample moving r ~now_ms
    done;
    float_of_int !acc /. 2000.0
  in
  let early = avg_at 0.0 and later = avg_at 300.0 in
  Alcotest.(check bool) "mean moved ~30 keys" true (later -. early > 20.0)

let test_k_accessor () =
  Alcotest.(check int) "k" 42 (Dist.Discrete.k (Dist.Discrete.uniform ~k:42))

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf samples in range" ~count:100
    QCheck.(pair (int_range 1 200) (float_range 0.5 3.0))
    (fun (k, s) ->
      let d = Dist.Discrete.zipfian ~k ~s ~v:1.0 in
      let r = Rng.create ~seed:(k + int_of_float (s *. 10.0)) in
      List.for_all
        (fun _ ->
          let x = Dist.Discrete.sample d r ~now_ms:0.0 in
          x >= 0 && x < k)
        (List.init 50 Fun.id))

let suite =
  ( "dist",
    [
      Alcotest.test_case "constant" `Quick test_constant;
      Alcotest.test_case "shifted/scaled" `Quick test_shifted_scaled;
      Alcotest.test_case "mean estimate" `Quick test_mean_estimate;
      Alcotest.test_case "discrete uniform range" `Quick test_discrete_uniform_range;
      Alcotest.test_case "discrete uniform covers" `Quick test_discrete_uniform_covers;
      Alcotest.test_case "zipf head-heavy" `Quick test_zipf_head_heavy;
      Alcotest.test_case "exponential decay" `Quick test_exponential_decay;
      Alcotest.test_case "normal centred" `Quick test_normal_centred;
      Alcotest.test_case "moving mean shifts keys" `Quick test_moving_mean_shifts;
      Alcotest.test_case "k accessor" `Quick test_k_accessor;
      QCheck_alcotest.to_alcotest prop_zipf_in_range;
    ] )
