(* Address, Region, Topology, Faults, Procq *)

let test_address_roundtrip () =
  Alcotest.(check int) "replica id" 3 (Address.replica_id (Address.replica 3));
  Alcotest.(check bool) "is_replica" true (Address.is_replica (Address.replica 0));
  Alcotest.(check bool) "is_client" true (Address.is_client (Address.client 0));
  Alcotest.(check string) "pp replica" "n2" (Address.to_string (Address.replica 2));
  Alcotest.(check string) "pp client" "c7" (Address.to_string (Address.client 7))

let test_address_ordering () =
  Alcotest.(check bool) "replica < client" true
    (Address.compare (Address.replica 5) (Address.client 0) < 0);
  Alcotest.(check bool) "same equal" true
    (Address.equal (Address.client 1) (Address.client 1))

let test_address_replica_id_on_client () =
  Alcotest.check_raises "client" (Invalid_argument "Address.replica_id: client 1")
    (fun () -> ignore (Address.replica_id (Address.client 1)))

let test_lan_topology () =
  let t = Topology.lan ~n_replicas:5 () in
  Alcotest.(check int) "n" 5 (Topology.n_replicas t);
  Alcotest.(check int) "one region" 1 (List.length (Topology.regions t));
  Alcotest.(check bool) "all local" true
    (Region.equal (Topology.region_of_replica t 3) Region.local)

let test_wan_topology_layout () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:2 () in
  Alcotest.(check int) "n" 10 (Topology.n_replicas t);
  Alcotest.(check int) "regions" 5 (List.length (Topology.regions t));
  (* round-robin layout: replica r is in region r mod 5 *)
  Alcotest.(check bool) "replica 0 in VA" true
    (Region.equal (Topology.region_of_replica t 0) Region.virginia);
  Alcotest.(check bool) "replica 6 in OH" true
    (Region.equal (Topology.region_of_replica t 6) Region.ohio);
  Alcotest.(check (list int)) "replicas in VA" [ 0; 5 ]
    (Topology.replicas_in t Region.virginia)

let test_rtt_sampling () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 () in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    let rtt = Topology.sample_rtt t rng (Address.replica 0) (Address.replica 4) in
    (* VA <-> JP is ~162 ms with 5% jitter *)
    Alcotest.(check bool) "plausible VA-JP rtt" true (rtt > 130.0 && rtt < 200.0)
  done

let test_one_way_half_rtt () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 ~jitter:0.0 () in
  let rng = Rng.create ~seed:1 in
  let d = Topology.sample_delay t rng (Address.replica 0) (Address.replica 1) in
  Alcotest.(check (float 1e-6)) "half of 11ms" 5.5 d

let test_client_region_assignment () =
  let t = Topology.wan ~regions:Region.aws_five ~replicas_per_region:1 () in
  Topology.assign_client t ~id:3 ~region:Region.japan;
  Alcotest.(check bool) "assigned" true
    (Region.equal (Topology.region_of t (Address.client 3)) Region.japan);
  (* unassigned clients default to the first region *)
  Alcotest.(check bool) "default" true
    (Region.equal (Topology.region_of t (Address.client 99)) Region.virginia)

let test_aws_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check (float 1e-9))
            "symmetric"
            (Topology.aws_rtt_ms a b) (Topology.aws_rtt_ms b a))
        Region.aws_five)
    Region.aws_five

let test_faults_crash_window () =
  let f = Faults.create () in
  Faults.crash f ~node:(Address.replica 1) ~from_ms:100.0 ~duration_ms:50.0;
  Alcotest.(check bool) "before" false (Faults.is_crashed f ~now_ms:99.0 (Address.replica 1));
  Alcotest.(check bool) "during" true (Faults.is_crashed f ~now_ms:120.0 (Address.replica 1));
  Alcotest.(check bool) "after" false (Faults.is_crashed f ~now_ms:151.0 (Address.replica 1));
  Alcotest.(check bool) "other node" false (Faults.is_crashed f ~now_ms:120.0 (Address.replica 2))

let test_faults_drop_directional () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:1 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.drop f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:100.0;
  Alcotest.(check bool) "a->b dropped" true (Faults.should_drop f rng ~now_ms:50.0 ~src:a ~dst:b);
  Alcotest.(check bool) "b->a fine" false (Faults.should_drop f rng ~now_ms:50.0 ~src:b ~dst:a)

let test_faults_flaky_probability () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.flaky f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:1000.0 ~p_drop:0.5;
  let drops = ref 0 in
  for _ = 1 to 2000 do
    if Faults.should_drop f rng ~now_ms:10.0 ~src:a ~dst:b then incr drops
  done;
  let p = float_of_int !drops /. 2000.0 in
  Alcotest.(check bool) "p ~0.5" true (Float.abs (p -. 0.5) < 0.05)

let test_faults_slow () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let a = Address.replica 0 and b = Address.replica 1 in
  Faults.slow f ~src:a ~dst:b ~from_ms:0.0 ~duration_ms:100.0 ~extra_ms:10.0;
  let d = Faults.extra_delay f rng ~now_ms:50.0 ~src:a ~dst:b in
  Alcotest.(check bool) "bounded delay" true (d >= 0.0 && d <= 10.0);
  Alcotest.(check (float 0.0)) "outside window" 0.0
    (Faults.extra_delay f rng ~now_ms:150.0 ~src:a ~dst:b)

let test_faults_partition () =
  let f = Faults.create () in
  let rng = Rng.create ~seed:5 in
  let r = Address.replica in
  Faults.partition f
    ~groups:[ [ r 0; r 1 ]; [ r 2; r 3; r 4 ] ]
    ~from_ms:0.0 ~duration_ms:100.0;
  Alcotest.(check bool) "cross-group severed" true
    (Faults.should_drop f rng ~now_ms:50.0 ~src:(r 0) ~dst:(r 2));
  Alcotest.(check bool) "within group fine" false
    (Faults.should_drop f rng ~now_ms:50.0 ~src:(r 2) ~dst:(r 4));
  Alcotest.(check bool) "healed after" false
    (Faults.should_drop f rng ~now_ms:150.0 ~src:(r 0) ~dst:(r 2))

let test_faults_clear () =
  let f = Faults.create () in
  Faults.crash f ~node:(Address.replica 0) ~from_ms:0.0 ~duration_ms:100.0;
  Faults.clear f;
  Alcotest.(check bool) "cleared" false (Faults.is_crashed f ~now_ms:50.0 (Address.replica 0))

let test_procq_queueing () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:0.5 ~bandwidth_mbps:1e9 () in
  (* two messages arriving together queue behind each other *)
  let f1 = Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0 in
  let f2 = Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0 in
  Alcotest.(check (float 1e-6)) "first" 1.0 f1;
  Alcotest.(check (float 1e-6)) "second queued" 2.0 f2;
  (* idle gap resets the queue *)
  let f3 = Procq.occupy_incoming q ~now_ms:10.0 ~size_bytes:0 in
  Alcotest.(check (float 1e-6)) "after idle" 11.0 f3

let test_procq_broadcast_serializes_once () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:0.5 ~bandwidth_mbps:1.0 () in
  (* bandwidth 1 Mbit/s = 125 bytes/ms; 125-byte message = 1 ms NIC *)
  let f = Procq.occupy_outgoing q ~now_ms:0.0 ~copies:4 ~size_bytes:125 in
  Alcotest.(check (float 1e-6)) "0.5 CPU + 4 NIC" 4.5 f

let test_procq_zero_is_free () =
  let q = Procq.zero () in
  Alcotest.(check (float 0.0)) "no cost" 5.0
    (Procq.occupy_incoming q ~now_ms:5.0 ~size_bytes:1_000_000);
  Alcotest.(check (float 0.0)) "no busy" 0.0 (Procq.busy_time q)

let test_procq_busy_accounting () =
  let q = Procq.create ~t_in_ms:1.0 ~t_out_ms:1.0 ~bandwidth_mbps:1e9 () in
  ignore (Procq.occupy_incoming q ~now_ms:0.0 ~size_bytes:0);
  ignore (Procq.occupy_outgoing q ~now_ms:0.0 ~copies:1 ~size_bytes:0);
  Alcotest.(check bool) "busy ~2ms" true (Float.abs (Procq.busy_time q -. 2.0) < 1e-6);
  Alcotest.(check int) "2 messages" 2 (Procq.messages_processed q);
  Procq.reset q;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Procq.busy_time q)

let suite =
  ( "net",
    [
      Alcotest.test_case "address roundtrip" `Quick test_address_roundtrip;
      Alcotest.test_case "address ordering" `Quick test_address_ordering;
      Alcotest.test_case "replica_id rejects client" `Quick test_address_replica_id_on_client;
      Alcotest.test_case "lan topology" `Quick test_lan_topology;
      Alcotest.test_case "wan topology layout" `Quick test_wan_topology_layout;
      Alcotest.test_case "rtt sampling plausible" `Quick test_rtt_sampling;
      Alcotest.test_case "one-way is half rtt" `Quick test_one_way_half_rtt;
      Alcotest.test_case "client region assignment" `Quick test_client_region_assignment;
      Alcotest.test_case "aws matrix symmetric" `Quick test_aws_matrix_symmetric;
      Alcotest.test_case "crash window" `Quick test_faults_crash_window;
      Alcotest.test_case "drop is directional" `Quick test_faults_drop_directional;
      Alcotest.test_case "flaky probability" `Quick test_faults_flaky_probability;
      Alcotest.test_case "slow adds bounded delay" `Quick test_faults_slow;
      Alcotest.test_case "partition" `Quick test_faults_partition;
      Alcotest.test_case "faults clear" `Quick test_faults_clear;
      Alcotest.test_case "procq queueing" `Quick test_procq_queueing;
      Alcotest.test_case "broadcast serializes once" `Quick test_procq_broadcast_serializes_once;
      Alcotest.test_case "zero queue is free" `Quick test_procq_zero_is_free;
      Alcotest.test_case "procq busy accounting" `Quick test_procq_busy_accounting;
    ] )
