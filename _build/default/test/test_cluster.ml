(* Cluster engine: validation, client plumbing, routing helpers. *)

module C = Cluster.Make (Paxi_protocols.Paxos)

let test_rejects_invalid_config () =
  let config = { (Config.default ~n_replicas:5) with Config.n_replicas = 0 } in
  match C.create ~config ~topology:(Topology.lan ~n_replicas:5 ()) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_rejects_size_mismatch () =
  let config = Config.default ~n_replicas:5 in
  match C.create ~config ~topology:(Topology.lan ~n_replicas:3 ()) () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "mentions sizes" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Invalid_argument"

let make () =
  let config = Config.default ~n_replicas:5 in
  C.create ~config ~topology:(Topology.lan ~n_replicas:5 ()) ()

let test_pending_and_give_up () =
  let cluster = make () in
  C.register_client cluster ~id:0 ();
  let command = Command.make ~id:0 ~client:0 (Command.Put (1, 1)) in
  Alcotest.(check bool) "nothing pending" false
    (C.pending cluster ~client:0 ~command);
  C.submit cluster ~client:0 ~target:0 ~command ~on_reply:(fun _ -> ());
  Alcotest.(check bool) "pending after submit" true
    (C.pending cluster ~client:0 ~command);
  C.give_up cluster ~client:0 ~command;
  Alcotest.(check bool) "gone after give_up" false
    (C.pending cluster ~client:0 ~command);
  (* the command still commits, but the reply is dropped silently *)
  Sim.run_until (C.sim cluster) 1_000.0

let test_reply_clears_pending () =
  let cluster = make () in
  C.register_client cluster ~id:0 ();
  let command = Command.make ~id:0 ~client:0 (Command.Put (1, 1)) in
  let replies = ref 0 in
  C.submit cluster ~client:0 ~target:0 ~command ~on_reply:(fun _ -> incr replies);
  Sim.run_until (C.sim cluster) 1_000.0;
  Alcotest.(check int) "one reply" 1 !replies;
  Alcotest.(check bool) "not pending" false (C.pending cluster ~client:0 ~command)

let test_resubmit_replaces_callback () =
  let cluster = make () in
  C.register_client cluster ~id:0 ();
  let command = Command.make ~id:0 ~client:0 (Command.Put (1, 1)) in
  let first = ref 0 and second = ref 0 in
  C.submit cluster ~client:0 ~target:0 ~command ~on_reply:(fun _ -> incr first);
  C.submit cluster ~client:0 ~target:1 ~command ~on_reply:(fun _ -> incr second);
  Sim.run_until (C.sim cluster) 2_000.0;
  Alcotest.(check int) "old callback replaced" 0 !first;
  Alcotest.(check bool) "new callback fired once" true (!second = 1)

let test_nearest_replica () =
  let topology =
    Topology.wan
      ~regions:[ Region.virginia; Region.ohio; Region.california ]
      ~replicas_per_region:3 ()
  in
  let config = Config.default ~n_replicas:9 in
  let cluster = C.create ~config ~topology () in
  C.register_client cluster ~id:0 ~region:Region.california ();
  C.register_client cluster ~id:1 ~region:Region.ohio ();
  Alcotest.(check int) "CA client -> replica 2" 2
    (C.nearest_replica cluster ~client:0);
  Alcotest.(check int) "OH client -> replica 1" 1
    (C.nearest_replica cluster ~client:1)

let test_busy_accounting_and_counts () =
  let cluster = make () in
  C.register_client cluster ~id:0 ();
  for i = 0 to 9 do
    C.submit cluster ~client:0 ~target:0
      ~command:(Command.make ~id:i ~client:0 (Command.Put (i, i)))
      ~on_reply:(fun _ -> ())
  done;
  Sim.run_until (C.sim cluster) 2_000.0;
  let sent, delivered, _ = C.message_counts cluster in
  Alcotest.(check bool) "messages flowed" true (sent > 0 && delivered > 0);
  Alcotest.(check bool) "leader busiest" true
    (C.replica_busy_ms cluster 0 > C.replica_busy_ms cluster 1)

let test_leader_of_key_introspection () =
  let cluster = make () in
  Sim.run_until (C.sim cluster) 500.0;
  Alcotest.(check (option int)) "replica 0 leads" (Some 0)
    (C.leader_of_key cluster ~replica:3 0)

let suite =
  ( "cluster",
    [
      Alcotest.test_case "rejects invalid config" `Quick test_rejects_invalid_config;
      Alcotest.test_case "rejects size mismatch" `Quick test_rejects_size_mismatch;
      Alcotest.test_case "pending and give_up" `Quick test_pending_and_give_up;
      Alcotest.test_case "reply clears pending" `Quick test_reply_clears_pending;
      Alcotest.test_case "resubmit replaces callback" `Quick test_resubmit_replaces_callback;
      Alcotest.test_case "nearest replica" `Quick test_nearest_replica;
      Alcotest.test_case "busy accounting" `Quick test_busy_accounting_and_counts;
      Alcotest.test_case "leader introspection" `Quick test_leader_of_key_introspection;
    ] )
