(* Mencius, ABD atomic storage, Chain replication *)

module M = Paxi_protocols.Mencius
module A = Paxi_protocols.Abd
module Ch = Paxi_protocols.Chain

let put k v = Command.Put (k, v)
let get k = Command.Get k

(* ----- Mencius ----------------------------------------------------- *)

module HM = Proto_harness.Make (Paxi_protocols.Mencius)

let test_mencius_basic () =
  let h = HM.lan ~n:5 () in
  let replies = HM.submit_seq h ~target:0 [ put 1 10; get 1; put 1 20; get 1 ] in
  Alcotest.(check int) "all" 4 (List.length replies);
  Alcotest.(check (list int)) "reads ordered" [ 10; 20 ]
    (List.filter_map (fun (r : Proto.reply) -> r.Proto.read) replies)

let test_mencius_slot_rotation () =
  let h = HM.lan ~n:5 () in
  ignore (HM.submit_seq h ~target:2 [ put 1 1 ]);
  (* replica 2 owns slots 2, 7, 12, ... *)
  Alcotest.(check int) "used slot 2, next own is 7" 7
    (M.next_owned_slot (HM.replica h 2))

let test_mencius_skips_fill_gaps () =
  let h = HM.lan ~n:5 () in
  (* only replica 3 proposes: everyone else must skip to let its
     second command execute *)
  ignore (HM.submit_seq h ~target:3 [ put 1 1; put 1 2; get 1 ]);
  let r = HM.replica h 0 in
  Alcotest.(check bool) "replica 0 skipped" true (M.skips_issued r >= 1);
  HM.run_for h 1_000.0;
  HM.assert_consistent h

let test_mencius_multi_proposers_agree () =
  let h = HM.lan ~n:5 () in
  let module C = HM.C in
  let replies = ref 0 in
  for c = 0 to 2 do
    let client = HM.new_client h in
    for i = 0 to 19 do
      let command = Command.make ~id:i ~client (put (i mod 3) ((c * 100) + i)) in
      ignore
        (Sim.schedule_at (HM.sim h)
           ~time:(float_of_int ((i * 7) + c))
           (fun () ->
             C.submit h.HM.cluster ~client ~target:c ~command
               ~on_reply:(fun _ -> incr replies)))
    done
  done;
  HM.run_for h 30_000.0;
  Alcotest.(check int) "all commit" 60 !replies;
  HM.assert_consistent h;
  (* every replica executed every command *)
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d" i)
      60
      (Executor.executed_count (M.executor (HM.replica h i)))
  done

(* ----- ABD --------------------------------------------------------- *)

module HA = Proto_harness.Make (Paxi_protocols.Abd)

let test_abd_write_read () =
  let h = HA.lan ~n:5 () in
  let replies = HA.submit_seq h ~target:0 [ put 1 10; get 1 ] in
  Alcotest.(check int) "two replies" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 10) (List.nth replies 1).Proto.read

let test_abd_read_from_other_replica () =
  let h = HA.lan ~n:5 () in
  ignore (HA.submit_seq h ~target:0 [ put 2 42 ]);
  let replies = HA.submit_seq h ~target:3 [ get 2 ] in
  Alcotest.(check (option int)) "read elsewhere" (Some 42)
    (List.hd replies).Proto.read

let test_abd_tags_grow () =
  let h = HA.lan ~n:5 () in
  ignore (HA.submit_seq h ~target:0 [ put 3 1 ]);
  let t1 = A.stored_tag (HA.replica h 0) 3 in
  ignore (HA.submit_seq h ~target:1 [ put 3 2 ]);
  let t2 = A.stored_tag (HA.replica h 0) 3 in
  Alcotest.(check bool) "tag increased" true (t2 > t1);
  (match t2 with
  | Some (_, writer) -> Alcotest.(check int) "writer recorded" 1 writer
  | None -> Alcotest.fail "no tag")

let test_abd_initial_read () =
  let h = HA.lan ~n:5 () in
  let replies = HA.submit_seq h ~target:2 [ get 99 ] in
  Alcotest.(check (option int)) "unwritten" None (List.hd replies).Proto.read

let test_abd_delete () =
  let h = HA.lan ~n:5 () in
  let replies =
    HA.submit_seq h ~target:0 [ put 4 7; Command.Delete 4; get 4 ]
  in
  Alcotest.(check (option int)) "deleted" None (List.nth replies 2).Proto.read

let test_abd_survives_minority_crash () =
  let h = HA.lan ~n:5 () in
  List.iter
    (fun i ->
      Faults.crash (HA.faults h) ~node:(Address.replica i) ~from_ms:0.0
        ~duration_ms:600_000.0)
    [ 3; 4 ];
  let replies = HA.submit_seq h ~target:0 [ put 5 55; get 5 ] in
  Alcotest.(check int) "majority suffices" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 55) (List.nth replies 1).Proto.read

let test_abd_linearizable_under_concurrency () =
  let h = HA.lan ~n:5 () in
  let module C = HA.C in
  let history = ref [] in
  let record client id key kind inv resp =
    history :=
      { Paxi_benchmark.Linearizability.client; op_id = id; key; kind;
        invoked_ms = inv; responded_ms = resp }
      :: !history
  in
  for c = 0 to 2 do
    let client = HA.new_client h in
    let rec issue i =
      if i < 30 then begin
        let is_write = (i + c) mod 2 = 0 in
        let op = if is_write then put 0 ((c * 1000) + i) else get 0 in
        let command = Command.make ~id:i ~client op in
        let inv = Sim.now (HA.sim h) in
        C.submit h.HA.cluster ~client ~target:c ~command ~on_reply:(fun r ->
            let resp = Sim.now (HA.sim h) in
            let kind =
              if is_write then Paxi_benchmark.Linearizability.Write ((c * 1000) + i)
              else Paxi_benchmark.Linearizability.Read r.Proto.read
            in
            record client i 0 kind inv resp;
            issue (i + 1))
      end
    in
    ignore (Sim.schedule_at (HA.sim h) ~time:(float_of_int c) (fun () -> issue 0))
  done;
  HA.run_for h 60_000.0;
  Alcotest.(check int) "all 90 done" 90 (List.length !history);
  Alcotest.(check int) "linearizable" 0
    (List.length (Paxi_benchmark.Linearizability.check !history))

(* ----- Chain replication ------------------------------------------ *)

module HC = Proto_harness.Make (Paxi_protocols.Chain)

let test_chain_roles () =
  let h = HC.lan ~n:4 () in
  Alcotest.(check bool) "0 is head" true (Ch.is_head (HC.replica h 0));
  Alcotest.(check bool) "3 is tail" true (Ch.is_tail (HC.replica h 3));
  Alcotest.(check bool) "1 is middle" false
    (Ch.is_head (HC.replica h 1) || Ch.is_tail (HC.replica h 1))

let test_chain_write_read () =
  let h = HC.lan ~n:4 () in
  let replies = HC.submit_seq h ~target:0 [ put 1 10; get 1 ] in
  Alcotest.(check int) "both served" 2 (List.length replies);
  (* writes are acked by the tail; reads served at the tail *)
  Alcotest.(check int) "write acked by tail" 3 (List.hd replies).Proto.replier;
  Alcotest.(check (option int)) "read" (Some 10) (List.nth replies 1).Proto.read

let test_chain_propagates_to_all () =
  let h = HC.lan ~n:4 () in
  ignore (HC.submit_seq h ~target:2 (List.init 10 (fun i -> put i i)));
  HC.run_for h 1_000.0;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "node %d applied" i)
      10
      (Executor.executed_count (Ch.executor (HC.replica h i)))
  done;
  HC.assert_consistent h;
  Alcotest.(check bool) "middle forwarded" true
    (Ch.writes_forwarded (HC.replica h 1) >= 10)

let test_chain_read_your_writes () =
  let h = HC.lan ~n:5 () in
  let replies =
    HC.submit_seq h ~target:1 [ put 7 1; put 7 2; put 7 3; get 7 ]
  in
  Alcotest.(check (option int)) "latest write" (Some 3)
    (List.nth replies 3).Proto.read

let suite =
  ( "extra_protocols",
    [
      Alcotest.test_case "mencius basic" `Quick test_mencius_basic;
      Alcotest.test_case "mencius slot rotation" `Quick test_mencius_slot_rotation;
      Alcotest.test_case "mencius skips fill gaps" `Quick test_mencius_skips_fill_gaps;
      Alcotest.test_case "mencius multi-proposer agreement" `Quick test_mencius_multi_proposers_agree;
      Alcotest.test_case "abd write/read" `Quick test_abd_write_read;
      Alcotest.test_case "abd read elsewhere" `Quick test_abd_read_from_other_replica;
      Alcotest.test_case "abd tags grow" `Quick test_abd_tags_grow;
      Alcotest.test_case "abd initial read" `Quick test_abd_initial_read;
      Alcotest.test_case "abd delete" `Quick test_abd_delete;
      Alcotest.test_case "abd survives minority crash" `Quick test_abd_survives_minority_crash;
      Alcotest.test_case "abd linearizable under concurrency" `Quick test_abd_linearizable_under_concurrency;
      Alcotest.test_case "chain roles" `Quick test_chain_roles;
      Alcotest.test_case "chain write/read" `Quick test_chain_write_read;
      Alcotest.test_case "chain propagates to all" `Quick test_chain_propagates_to_all;
      Alcotest.test_case "chain read-your-writes" `Quick test_chain_read_your_writes;
    ] )
