test/test_dist.ml: Alcotest Array Dist Float Fun List QCheck QCheck_alcotest Rng Stdlib
