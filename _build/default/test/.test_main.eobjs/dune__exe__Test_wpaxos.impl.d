test/test_wpaxos.ml: Address Alcotest Command Config Faults List Option Paxi_protocols Printf Proto Proto_harness Region Sim
