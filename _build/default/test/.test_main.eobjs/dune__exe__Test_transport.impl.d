test/test_transport.ml: Address Alcotest Array Faults List Procq Sim Topology Transport
