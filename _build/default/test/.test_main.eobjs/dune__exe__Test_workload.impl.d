test/test_workload.ml: Alcotest Command Float Int List Paxi_benchmark Printf Rng Workload
