test/test_quorum.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Quorum
