test/test_vpaxos.ml: Alcotest Command Config List Paxi_protocols Proto Proto_harness Region Sim
