test/test_store.ml: Alcotest Ballot Command Config Executor Kv List Slot_log State_machine
