test/test_extra_protocols.ml: Address Alcotest Command Executor Faults List Paxi_benchmark Paxi_protocols Printf Proto Proto_harness Sim
