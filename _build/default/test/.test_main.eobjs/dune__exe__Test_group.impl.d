test/test_group.ml: Alcotest Cluster Command Config Executor Fun List Paxi_protocols Printf Proto Rng Sim Topology
