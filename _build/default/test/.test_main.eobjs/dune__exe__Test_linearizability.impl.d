test/test_linearizability.ml: Alcotest Fun Hashtbl Linearizability List Option Paxi_benchmark QCheck QCheck_alcotest
