test/test_wankeeper.ml: Alcotest Command Config List Paxi_protocols Printf Proto Proto_harness Region Sim
