test/test_integration.ml: Address Alcotest Config Faults Float Linearizability List Paxi_benchmark Paxi_protocols Printf Proto Region Runner Stats Stdlib Topology Workload
