test/test_raft.ml: Address Alcotest Command Faults List Option Paxi_protocols Printf Proto Proto_harness Sim
