test/test_fault_properties.ml: Address Config Faults Linearizability List Paxi_benchmark Paxi_protocols Printf Proto QCheck QCheck_alcotest Runner String Topology Workload
