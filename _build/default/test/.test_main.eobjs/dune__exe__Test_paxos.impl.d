test/test_paxos.ml: Address Alcotest Command Config Faults List Paxi_protocols Printf Proto Proto_harness Sim State_machine
