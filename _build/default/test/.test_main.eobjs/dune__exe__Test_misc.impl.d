test/test_misc.ml: Alcotest Format List Mseries Paxi_benchmark Paxi_protocols Report String
