test/test_cluster.ml: Alcotest Cluster Command Config Paxi_protocols Region Sim String Topology
