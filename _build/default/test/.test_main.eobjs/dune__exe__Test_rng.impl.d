test/test_rng.ml: Alcotest Array Dist Float Fun Int List QCheck QCheck_alcotest Rng Stats
