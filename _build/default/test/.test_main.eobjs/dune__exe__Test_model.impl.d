test/test_model.ml: Advisor Alcotest Dist Float Formulas Latency_model List Order_stats Paxi_model Printf QCheck QCheck_alcotest Queueing Region Rng Service
