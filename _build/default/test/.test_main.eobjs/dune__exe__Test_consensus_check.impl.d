test/test_consensus_check.ml: Alcotest Command Consensus_check Format List Paxi_benchmark State_machine
