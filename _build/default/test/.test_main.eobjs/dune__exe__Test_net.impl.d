test/test_net.ml: Address Alcotest Faults Float List Procq Region Rng Topology
