test/test_json.ml: Alcotest Config Filename Json List Option Out_channel Printf QCheck QCheck_alcotest Result Sys
