test/test_epaxos.ml: Address Alcotest Command Executor Faults List Option Paxi_protocols Printf Proto Proto_harness Sim
