test/proto_harness.ml: Alcotest Cluster Command Config Executor Faults Fun Hashtbl Kv List Paxi_benchmark Proto Region Sim State_machine Topology
