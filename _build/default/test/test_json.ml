let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Number 42.0);
  Alcotest.(check bool) "negative" true (parse_ok "-7" = Json.Number (-7.0));
  Alcotest.(check bool) "float" true (parse_ok "3.5e2" = Json.Number 350.0);
  Alcotest.(check bool) "string" true (parse_ok "\"hi\"" = Json.String "hi")

let test_escapes () =
  Alcotest.(check bool) "newline" true
    (parse_ok {|"a\nb"|} = Json.String "a\nb");
  Alcotest.(check bool) "quote" true
    (parse_ok {|"a\"b"|} = Json.String "a\"b");
  Alcotest.(check bool) "unicode" true
    (parse_ok {|"A"|} = Json.String "A")

let test_containers () =
  Alcotest.(check bool) "array" true
    (parse_ok "[1, 2, 3]" = Json.List [ Json.Number 1.0; Json.Number 2.0; Json.Number 3.0 ]);
  Alcotest.(check bool) "empty array" true (parse_ok "[]" = Json.List []);
  Alcotest.(check bool) "empty object" true (parse_ok "{}" = Json.Obj []);
  Alcotest.(check bool) "nested" true
    (parse_ok {|{"a": [true, {"b": 1}]}|}
    = Json.Obj
        [ ("a", Json.List [ Json.Bool true; Json.Obj [ ("b", Json.Number 1.0) ] ]) ])

let test_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let test_roundtrip () =
  let v =
    Json.Obj
      [
        ("n", Json.Number 9.0);
        ("name", Json.String "pa\"xi\n");
        ("flags", Json.List [ Json.Bool true; Json.Null ]);
        ("rate", Json.Number 1.5);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (parse_ok (Json.to_string v) = v)

let prop_roundtrip =
  let rec gen_value depth =
    QCheck.Gen.(
      if depth = 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Number (float_of_int i)) (int_range (-1000) 1000);
            map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
          ]
      else
        oneof
          [
            map (fun i -> Json.Number (float_of_int i)) (int_range (-1000) 1000);
            map (fun l -> Json.List l) (list_size (int_range 0 4) (gen_value (depth - 1)));
            map
              (fun kvs -> Json.Obj (List.mapi (fun i (_, v) -> (Printf.sprintf "k%d" i, v)) kvs))
              (list_size (int_range 0 4) (pair unit (gen_value (depth - 1))));
          ])
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make (gen_value 3))
    (fun v -> Json.parse (Json.to_string v) = Ok v)

let test_accessors () =
  let v = parse_ok {|{"a": 1, "b": "x", "c": true, "d": 1.5}|} in
  Alcotest.(check (option int)) "int" (Some 1)
    (Option.bind (Json.member "a" v) Json.to_int);
  Alcotest.(check (option string)) "string" (Some "x")
    (Option.bind (Json.member "b" v) Json.get_string);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "c" v) Json.to_bool);
  Alcotest.(check bool) "1.5 not int" true
    (Option.bind (Json.member "d" v) Json.to_int = None);
  Alcotest.(check bool) "missing" true (Json.member "z" v = None)

let test_config_roundtrip () =
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.q2_size = Some 3;
      thrifty = true;
      initial_object_owner = Some 1;
    }
  in
  match Config.of_json (Config.to_json config) with
  | Ok c -> Alcotest.(check bool) "roundtrip" true (c = config)
  | Error e -> Alcotest.fail e

let test_config_minimal () =
  match Config.of_json (Result.get_ok (Json.parse {|{"n_replicas": 5}|})) with
  | Ok c ->
      Alcotest.(check bool) "defaults fill in" true (c = Config.default ~n_replicas:5)
  | Error e -> Alcotest.fail e

let test_config_rejects_unknown_field () =
  Alcotest.(check bool) "typo caught" true
    (Result.is_error
       (Config.of_json
          (Result.get_ok (Json.parse {|{"n_replicas": 5, "thirfty": true}|}))))

let test_config_requires_n () =
  Alcotest.(check bool) "missing n" true
    (Result.is_error (Config.of_json (Result.get_ok (Json.parse "{}"))))

let test_config_validates () =
  Alcotest.(check bool) "bad q2" true
    (Result.is_error
       (Config.of_json
          (Result.get_ok (Json.parse {|{"n_replicas": 5, "q2_size": 99}|}))))

let test_config_file () =
  let path = Filename.temp_file "paxi_config" ".json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        {|{"n_replicas": 7, "thrifty": true, "seed": 123}|});
  (match Config.load_file path with
  | Ok c ->
      Alcotest.(check int) "n" 7 c.Config.n_replicas;
      Alcotest.(check bool) "thrifty" true c.Config.thrifty;
      Alcotest.(check int) "seed" 123 c.Config.seed
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Config.load_file path))

let suite =
  ( "json",
    [
      Alcotest.test_case "scalars" `Quick test_scalars;
      Alcotest.test_case "escapes" `Quick test_escapes;
      Alcotest.test_case "containers" `Quick test_containers;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
      Alcotest.test_case "config minimal" `Quick test_config_minimal;
      Alcotest.test_case "config rejects unknown field" `Quick test_config_rejects_unknown_field;
      Alcotest.test_case "config requires n" `Quick test_config_requires_n;
      Alcotest.test_case "config validates" `Quick test_config_validates;
      Alcotest.test_case "config file" `Quick test_config_file;
    ] )
