module W = Paxi_protocols.Wpaxos
module H = Proto_harness.Make (Paxi_protocols.Wpaxos)

let put k v = Command.Put (k, v)
let get k = Command.Get k

let wan ?fz ?owner () =
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.fz = Option.value fz ~default:0;
      initial_object_owner = owner;
    }
  in
  H.wan3 ~config ()

let test_claims_unowned_key () =
  let h = wan () in
  let client = H.new_client h ~region:Region.virginia in
  let replies = H.submit_seq h ~client ~target:0 [ put 1 10; get 1 ] in
  Alcotest.(check int) "committed" 2 (List.length replies);
  Alcotest.(check bool) "replica 0 owns key 1" true (W.owns (H.replica h 0) 1);
  Alcotest.(check (option int)) "read" (Some 10) (List.nth replies 1).Proto.read

let test_initial_owner_config () =
  let h = wan ~owner:1 () in
  H.run_for h 10.0;
  Alcotest.(check (option int)) "replica 1 owns everything" (Some 1)
    (W.owner_of (H.replica h 5) 123);
  Alcotest.(check bool) "replica 1 active" true (W.owns (H.replica h 1) 123)

let test_remote_requests_forwarded () =
  let h = wan ~owner:1 () in
  (* a single CA access goes to the OH owner, no steal *)
  let client = H.new_client h ~region:Region.california in
  let replies = H.submit_seq h ~client ~target:2 [ put 7 70 ] in
  Alcotest.(check int) "committed remotely" 1 (List.length replies);
  Alcotest.(check int) "replied by owner" 1 (List.hd replies).Proto.replier;
  Alcotest.(check int) "no steal for one access" 0 (W.steals_started (H.replica h 2))

let test_steals_after_three_accesses () =
  let h = wan ~owner:1 () in
  let client = H.new_client h ~region:Region.california in
  ignore (H.submit_seq h ~client ~target:2 (List.init 6 (fun i -> put 7 i)));
  Alcotest.(check bool) "CA leader stole key 7" true (W.owns (H.replica h 2) 7);
  Alcotest.(check bool) "steal happened" true (W.steals_started (H.replica h 2) >= 1);
  H.assert_consistent h

let test_local_commit_latency_fz0 () =
  let h = wan ~owner:0 () in
  let client = H.new_client h ~region:Region.virginia in
  (* warm up ownership *)
  ignore (H.submit_seq h ~client ~target:0 [ put 1 0 ]);
  let t0 = Sim.now (H.sim h) in
  ignore (H.submit_seq h ~client ~target:0 [ put 1 1 ]);
  let elapsed = Sim.now (H.sim h) -. t0 in
  (* region-local commit: well under a cross-region RTT (VA-OH = 11ms).
     submit_seq runs the sim in timeout steps, so measure conservatively *)
  Alcotest.(check bool)
    (Printf.sprintf "local latency (%.1f ms)" elapsed)
    true (elapsed < 11.0)

let test_fz1_survives_region_failure () =
  let h = wan ~fz:1 ~owner:0 () in
  H.run_for h 10.0;
  (* crash all of California (replicas 2,5,8) *)
  List.iter
    (fun i ->
      Faults.crash (H.faults h) ~node:(Address.replica i) ~from_ms:0.0
        ~duration_ms:600_000.0)
    [ 2; 5; 8 ];
  let client = H.new_client h ~region:Region.virginia in
  let replies = H.submit_seq h ~client ~target:0 (List.init 5 (fun i -> put i i)) in
  Alcotest.(check int) "commits despite region loss" 5 (List.length replies)

let test_fz0_region_failure_blocks_owned_keys () =
  (* fz=0 cannot tolerate losing the owner region *)
  let h = wan ~fz:0 ~owner:0 () in
  H.run_for h 10.0;
  List.iter
    (fun i ->
      Faults.crash (H.faults h) ~node:(Address.replica i) ~from_ms:0.0
        ~duration_ms:600_000.0)
    [ 0; 3; 6 ];
  let client = H.new_client h ~region:Region.ohio in
  let module C = H.C in
  let got = ref false in
  let command = Command.make ~id:0 ~client (put 1 1) in
  ignore
    (Sim.schedule_after (H.sim h) ~delay:1.0 (fun () ->
         C.submit h.H.cluster ~client ~target:1 ~command ~on_reply:(fun _ -> got := true)));
  H.run_for h 3_000.0;
  (* the OH leader will try to steal; the steal's q1 needs majorities
     in all 3 zones with fz=0, which the dead VA region denies *)
  Alcotest.(check bool) "no commit possible" false !got

let test_concurrent_steal_race_converges () =
  let h = wan ~owner:1 () in
  (* VA and CA both hammer the same key; both try to steal *)
  let va = H.new_client h ~region:Region.virginia in
  let ca = H.new_client h ~region:Region.california in
  let module C = H.C in
  let replies = ref 0 in
  for i = 0 to 19 do
    let ca_cmd = Command.make ~id:i ~client:ca (put 9 (100 + i)) in
    let va_cmd = Command.make ~id:i ~client:va (put 9 i) in
    ignore
      (Sim.schedule_at (H.sim h)
         ~time:(float_of_int i *. 120.0)
         (fun () ->
           C.submit h.H.cluster ~client:va ~target:0 ~command:va_cmd
             ~on_reply:(fun _ -> incr replies);
           C.submit h.H.cluster ~client:ca ~target:2 ~command:ca_cmd
             ~on_reply:(fun _ -> incr replies)))
  done;
  H.run_for h 120_000.0;
  Alcotest.(check int) "all eventually commit" 40 !replies;
  H.assert_consistent h

let test_non_leader_replica_forwards_to_zone_leader () =
  let h = wan ~owner:0 () in
  let client = H.new_client h ~region:Region.virginia in
  (* replica 3 is in VA but not the zone leader (leaders are 0,1,2) *)
  let replies = H.submit_seq h ~client ~target:3 [ put 4 44; get 4 ] in
  Alcotest.(check int) "handled via zone leader" 2 (List.length replies);
  Alcotest.(check (option int)) "read" (Some 44) (List.nth replies 1).Proto.read

let suite =
  ( "wpaxos",
    [
      Alcotest.test_case "claims unowned key" `Quick test_claims_unowned_key;
      Alcotest.test_case "initial owner config" `Quick test_initial_owner_config;
      Alcotest.test_case "remote requests forwarded" `Quick test_remote_requests_forwarded;
      Alcotest.test_case "steals after three accesses" `Quick test_steals_after_three_accesses;
      Alcotest.test_case "fz=0 commits locally" `Quick test_local_commit_latency_fz0;
      Alcotest.test_case "fz=1 survives region failure" `Quick test_fz1_survives_region_failure;
      Alcotest.test_case "fz=0 blocked by owner-region failure" `Quick test_fz0_region_failure_blocks_owned_keys;
      Alcotest.test_case "steal race converges" `Quick test_concurrent_steal_race_converges;
      Alcotest.test_case "non-leader forwards in zone" `Quick test_non_leader_replica_forwards_to_zone_leader;
    ] )
