let test_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done

let test_seed_changes_stream () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.float a 1.0) in
  let ys = List.init 20 (fun _ -> Rng.float b 1.0) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.float child 1.0) in
  let ys = List.init 20 (fun _ -> Rng.float parent 1.0) in
  Alcotest.(check bool) "child differs from parent" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_uniform_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:2.0 ~hi:5.0 in
    Alcotest.(check bool) "in range" true (x >= 2.0 && x < 5.0)
  done

let test_normal_moments () =
  let rng = Rng.create ~seed:11 in
  let n = 50_000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Rng.normal rng ~mu:5.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean ~5" true (Float.abs (Stats.mean s -. 5.0) < 0.05);
  Alcotest.(check bool) "stddev ~2" true (Float.abs (Stats.stddev s -. 2.0) < 0.05)

let test_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.exponential rng ~rate:0.5)
  done;
  Alcotest.(check bool) "mean ~2" true (Float.abs (Stats.mean s -. 2.0) < 0.1)

let test_bernoulli_frequency () =
  let rng = Rng.create ~seed:17 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p ~0.3" true (Float.abs (f -. 0.3) < 0.02)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:19 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_pick_member () =
  let rng = Rng.create ~seed:23 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.exists (( = ) (Rng.pick rng a)) a)
  done

let prop_normal_pos_nonneg =
  QCheck.Test.make ~name:"Dist.normal_pos never negative" ~count:500
    QCheck.(pair (float_range (-5.0) 5.0) (float_range 0.1 5.0))
    (fun (mu, sigma) ->
      let rng = Rng.create ~seed:(int_of_float (mu *. 100.) lxor 55) in
      let d = Dist.normal_pos ~mu ~sigma in
      List.for_all (fun _ -> Dist.sample d rng >= 0.0) (List.init 50 Fun.id))

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed changes stream" `Quick test_seed_changes_stream;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
      Alcotest.test_case "normal moments" `Slow test_normal_moments;
      Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
      Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "pick returns member" `Quick test_pick_member;
      QCheck_alcotest.to_alcotest prop_normal_pos_nonneg;
    ] )
