(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation section. Run everything with

     dune exec bench/main.exe

   or a subset by name:

     dune exec bench/main.exe -- fig9 fig11 formulas

   Absolute numbers come from the calibrated simulator (DESIGN.md);
   the reproduction targets are the shapes — who wins, by what
   factor, where crossovers fall. EXPERIMENTS.md records the
   side-by-side against the paper. Set PAXI_BENCH_QUICK=1 for a
   shortened smoke run. *)

open Paxi_benchmark
open Paxi_model
module Pool = Paxi_exec.Pool
module Parmap = Paxi_exec.Parmap

(* --quick on the command line is equivalent to PAXI_BENCH_QUICK=1
   (CI's perf-smoke job uses the flag form). *)
let quick =
  Array.exists (String.equal "--quick") Sys.argv
  || Sys.getenv_opt "PAXI_BENCH_QUICK" = Some "1"
let measured_ms = if quick then 1_000.0 else 2_000.0
let warmup_ms = if quick then 300.0 else 1_000.0

(* Every measurement point below is an independent simulation, so
   whole grids fan out across the domain pool (Parmap.map, sized by
   PAXI_JOBS / the core count) and only the printing is sequential.
   Each point's seed is derived from the point's identity — never from
   execution order — so pooled output is byte-identical to
   PAXI_JOBS=1. *)
let root_seed = 42
let point_seed key = Runner.derive_seed ~root:root_seed (Hashtbl.hash key)

(* ------------------------------------------------------------------ *)
(* Shared experiment plumbing                                          *)
(* ------------------------------------------------------------------ *)

let zoned_protocols = [ "wpaxos"; "wankeeper"; "vpaxos" ]

(* LAN deployments of multi-leader protocols use three co-located
   zones (a single AZ): LAN latencies, zone structure for leaders. *)
let lan_topology name n =
  if List.mem name zoned_protocols then
    Topology.custom
      ~replica_regions:
        (List.concat_map
           (fun z -> List.init (n / 3) (fun _ -> Region.make z))
           [ "az-a"; "az-b"; "az-c" ])
      ~rtt_ms:(fun _ _ -> 0.4271)
      ~jitter:0.02 ()
  else Topology.lan ~n_replicas:n ()

(* Clients of a zoned LAN deployment are spread across the co-located
   zones (they connect through some replica's zone), so owner-side
   locality tracking sees a uniform mix and does not collapse
   ownership onto one leader. *)
let lan_client_specs name ~concurrency workload =
  if List.mem name zoned_protocols then
    List.map
      (fun z ->
        Runner.clients ~region:(Region.make z) ~target:Runner.Round_robin
          ~count:(Stdlib.max 1 (concurrency / 3))
          workload)
      [ "az-a"; "az-b"; "az-c" ]
  else [ Runner.clients ~target:Runner.Round_robin ~count:concurrency workload ]

(* One LAN measurement point at a concurrency level, on the paper's
   uniform 1000-key 50%-write workload (§5.2). *)
let lan_point name ~concurrency =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let n = 9 in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed = point_seed ("lan", name, concurrency);
    }
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(lan_topology name n)
      ~client_specs:(lan_client_specs name ~concurrency Workload.default)
      ()
  in
  Runner.run (module P) spec

let concurrency_grid = if quick then [ 2; 16; 48 ] else [ 1; 8; 32; 64 ]

(* Sweep several protocols' whole concurrency grids as one pool batch
   (figures that plot multiple protocols side by side would otherwise
   only parallelize within one curve at a time). *)
let lan_series_many names =
  let points =
    List.concat_map
      (fun name -> List.map (fun c -> (name, c)) concurrency_grid)
      names
  in
  let rows =
    Parmap.map
      (fun (name, c) ->
        let r = lan_point name ~concurrency:c in
        (name, (c, r.Runner.throughput_rps, Stats.mean r.Runner.latency)))
      points
  in
  List.map
    (fun name ->
      ( name,
        List.filter_map
          (fun (n, row) -> if n = name then Some row else None)
          rows ))
    names

let lan_series name = List.assoc name (lan_series_many [ name ])

let series_rows series =
  List.map
    (fun (c, thr, lat) -> [ string_of_int c; Report.frate thr; Report.fms lat ])
    series

let max_throughput series =
  List.fold_left (fun acc (_, thr, _) -> Float.max acc thr) 0.0 series

(* ------------------------------------------------------------------ *)
(* Table 1 — queueing models                                           *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Report.section "Table 1: queue waiting-time models (mu = 5000/s, waits in ms)";
  let mu = 5000.0 in
  let kinds =
    [
      ("M/M/1", Queueing.Mm1);
      ("M/D/1", Queueing.Md1);
      ("M/G/1 cs2=0.5", Queueing.Mg1 { service_cv2 = 0.5 });
      ("G/G/1 ca2=1 cs2=0.5", Queueing.Gg1 { arrival_cv2 = 1.0; service_cv2 = 0.5 });
    ]
  in
  Report.print_table
    ~header:("rho" :: List.map fst kinds)
    ~rows:
      (List.map
         (fun rho ->
           let lambda = rho *. mu in
           Printf.sprintf "%.2f" rho
           :: List.map
                (fun (_, k) ->
                  Report.fms (Queueing.wait_time k ~lambda ~mu *. 1000.0))
                kinds)
         [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95 ]);
  print_endline "(M/D/1 is half of M/M/1 at equal rho, as the formulas require)"

(* ------------------------------------------------------------------ *)
(* Fig. 3 — LAN RTT histogram                                          *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Report.section "Fig 3: intra-region RTT distribution, N(0.4271, 0.0476)";
  let rng = Rng.create ~seed:3 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Dist.sample (Dist.normal_pos ~mu:0.4271 ~sigma:0.0476) rng)
  done;
  Printf.printf "sampled: mu=%.4f sigma=%.4f (paper: mu=0.4271 sigma=0.0476)\n"
    (Stats.mean s) (Stats.stddev s);
  List.iter
    (fun (lo, _hi, count) ->
      Printf.printf "  %.3f ms  %s\n" lo (String.make (count / 150) '#'))
    (Stats.histogram s ~bins:24)

(* ------------------------------------------------------------------ *)
(* Fig. 4 — queueing models vs the Paxi reference implementation       *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  Report.section "Fig 4: queueing models vs Paxi/Paxos (9-node LAN)";
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:4 in
  let measured = lan_series "paxos" in
  let model kind thr =
    match
      Latency_model.lan_point ~queue:kind Latency_model.Paxos ~node
        ~lan:Latency_model.default_lan ~rng ~lambda_rps:thr
    with
    | Some p -> Report.fms p.Latency_model.latency_ms
    | None -> "-"
  in
  Report.print_table
    ~header:[ "throughput"; "M/M/1"; "M/D/1"; "M/G/1"; "G/G/1"; "Paxi (measured)" ]
    ~rows:
      (List.map
         (fun (_, thr, lat) ->
           [
             Report.frate thr;
             model Queueing.Mm1 thr;
             model Queueing.Md1 thr;
             model (Queueing.Mg1 { service_cv2 = 0.0 }) thr;
             model (Queueing.Gg1 { arrival_cv2 = 1.0; service_cv2 = 0.0 }) thr;
             Report.fms lat;
           ])
         measured);
  print_endline
    "(M/D/1 and M/G/1 track the measured curve most closely; the paper\n\
     selects M/D/1 for the rest of the analysis, and so do we)"

(* ------------------------------------------------------------------ *)
(* Fig. 7 — Paxi/Paxos vs an independent Raft                          *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  Report.section "Fig 7: Paxi/Paxos vs independent Raft (9 replicas, LAN)";
  let all = lan_series_many [ "paxos"; "raft" ] in
  let paxos = List.assoc "paxos" all in
  let raft = List.assoc "raft" all in
  Report.print_table
    ~header:[ "clients"; "paxos ops/s"; "paxos lat"; "raft ops/s"; "raft lat" ]
    ~rows:
      (List.map2
         (fun (c, pt, pl) (_, rt, rl) ->
           [ string_of_int c; Report.frate pt; Report.fms pl;
             Report.frate rt; Report.fms rl ])
         paxos raft);
  let pmax = max_throughput paxos and rmax = max_throughput raft in
  Printf.printf
    "max throughput: paxos %.0f, raft %.0f (ratio %.2f — the same\n\
     single-leader ceiling, as the paper finds for Paxi/Paxos vs etcd)\n"
    pmax rmax (rmax /. pmax)

(* ------------------------------------------------------------------ *)
(* Fig. 8 — modeled LAN performance                                    *)
(* ------------------------------------------------------------------ *)

let fig8_protocols =
  [
    ("multipaxos", Latency_model.Paxos);
    ("fpaxos |q2|=3", Latency_model.Fpaxos { q2 = 3 });
    ("epaxos", Latency_model.Epaxos { conflict = 0.05 });
    ("wpaxos", Latency_model.Wpaxos { leaders = 3; locality = 1.0; fz = 0 });
  ]

let fig8 () =
  Report.section "Fig 8a: modeled LAN latency vs throughput (9 nodes)";
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:8 in
  List.iter
    (fun (name, proto) ->
      let cap = Latency_model.lan_max_throughput proto ~node in
      Printf.printf "\n%s (max %.0f rounds/s)\n" name cap;
      let lambdas = List.map (fun f -> f *. cap) [ 0.2; 0.4; 0.6; 0.8; 0.95 ] in
      List.iter
        (fun (p : Latency_model.point) ->
          Printf.printf "  %8.0f rps  %7.3f ms\n" p.Latency_model.throughput_rps
            p.Latency_model.latency_ms)
        (Latency_model.lan_curve proto ~node ~lan:Latency_model.default_lan ~rng
           ~lambdas))
    fig8_protocols;
  Report.section "Fig 8b: latency at low throughput (2000 rounds/s)";
  Report.print_table ~header:[ "protocol"; "latency (ms)" ]
    ~rows:
      (List.map
         (fun (name, proto) ->
           [
             name;
             (match
                Latency_model.lan_point proto ~node ~lan:Latency_model.default_lan
                  ~rng ~lambda_rps:2000.0
              with
             | Some p -> Report.fms p.Latency_model.latency_ms
             | None -> "-");
           ])
         fig8_protocols)

(* ------------------------------------------------------------------ *)
(* Fig. 9 — experimental LAN performance                               *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  Report.section
    "Fig 9: experimental LAN latency vs throughput (9 nodes, 1000 keys, 50% writes)";
  let names = [ "paxos"; "fpaxos"; "epaxos"; "wpaxos"; "wankeeper" ] in
  let all = lan_series_many names in
  List.iter
    (fun (name, series) ->
      Printf.printf "\n%s\n" name;
      Report.print_table ~header:[ "clients"; "ops/s"; "mean latency (ms)" ]
        ~rows:(series_rows series))
    all;
  let cap name = max_throughput (List.assoc name all) in
  Report.section "Fig 9 summary (the paper's qualitative findings)";
  Printf.printf "single-leader ceiling: paxos %.0f, fpaxos %.0f ops/s (same bottleneck)\n"
    (cap "paxos") (cap "fpaxos");
  Printf.printf "wpaxos vs paxos:       %.0f vs %.0f = +%.0f%% (paper: ~+55%%)\n"
    (cap "wpaxos") (cap "paxos")
    (((cap "wpaxos" /. cap "paxos") -. 1.0) *. 100.0);
  Printf.printf "wankeeper vs wpaxos:   %.0f vs %.0f (hierarchy trims leader load)\n"
    (cap "wankeeper") (cap "wpaxos");
  Printf.printf "epaxos:                %.0f ops/s (dependency-bookkeeping penalty)\n"
    (cap "epaxos")

(* ------------------------------------------------------------------ *)
(* Fig. 10 — modeled WAN performance                                   *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  Report.section "Fig 10: modeled WAN latency vs aggregate throughput (5 regions)";
  let node = Service.default_node ~n:5 in
  let wan = Latency_model.default_wan in
  let entries =
    [
      ("multipaxos (CA leader)", Latency_model.Paxos, Region.california);
      ("fpaxos |q2|=2 (CA leader)", Latency_model.Fpaxos { q2 = 2 }, Region.california);
      ("epaxos (conflict=0.3)", Latency_model.Epaxos { conflict = 0.3 }, Region.virginia);
      ( "epaxos (conflict=[0.02,0.70])",
        Latency_model.Epaxos_adaptive { conflict_lo = 0.02; conflict_hi = 0.70 },
        Region.virginia );
      ( "wpaxos (locality=0.7)",
        Latency_model.Wpaxos { leaders = 5; locality = 0.7; fz = 0 },
        Region.virginia );
    ]
  in
  List.iter
    (fun (name, proto, leader_region) ->
      let cap = Latency_model.lan_max_throughput proto ~node in
      Printf.printf "\n%s\n" name;
      let lambdas = List.map (fun f -> f *. cap) [ 0.2; 0.5; 0.8; 0.95 ] in
      List.iter
        (fun (p : Latency_model.point) ->
          Printf.printf "  %8.0f rps  %8.3f ms\n" p.Latency_model.throughput_rps
            p.Latency_model.latency_ms)
        (Latency_model.wan_curve proto ~node ~wan ~leader_region ~lambdas))
    entries;
  print_endline
    "\n(>100 ms separates Paxos from WPaxos; flexible quorums cut FPaxos'\n\
     quorum wait; adaptive-conflict EPaxos degrades as load grows)"

(* ------------------------------------------------------------------ *)
(* Fig. 11 — conflict experiments across regions                       *)
(* ------------------------------------------------------------------ *)

let fig11_regions = [ Region.virginia; Region.ohio; Region.california ]

let fig11_run name ~fz ~conflict =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  (* Paxos's stable leader is replica 0, i.e. the first region: home
     it with the hot object in Ohio, like the other protocols *)
  let topo_regions =
    if name = "paxos" then Region.[ ohio; virginia; california ]
    else fig11_regions
  in
  let topology = Topology.wan ~regions:topo_regions ~replicas_per_region:3 () in
  let config =
    {
      (Config.default ~n_replicas:9) with
      Config.fz;
      seed = point_seed ("fig11", name, fz, conflict);
      master_region_index = 1 (* Ohio *);
      initial_object_owner =
        (if name = "epaxos" || name = "paxos" then None else Some 1);
    }
  in
  let client_specs =
    List.mapi
      (fun i region ->
        Runner.clients ~region ~count:2
          {
            Workload.default with
            Workload.keys = 900;
            min_key = 100;
            hot_key = 0 (* the designated conflict object, homed in Ohio *);
            conflict_ratio = conflict;
            dist =
              (let k = 900.0 in
               Workload.Normal
                 {
                   mu = (float_of_int i +. 0.5) *. k /. 3.0;
                   sigma = k /. 9.0;
                   speed_ms = 0.0;
                   drift = 0.0;
                 });
          })
      fig11_regions
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config ~topology
      ~client_specs ()
  in
  let r = Runner.run (module P) spec in
  List.map
    (fun region ->
      match
        List.find_opt (fun (rg, _) -> Region.equal rg region) r.Runner.per_region
      with
      | Some (_, s) -> Stats.mean s
      | None -> nan)
    fig11_regions

let fig11 () =
  Report.section
    "Fig 11: per-region latency under a conflict workload (hot object in Ohio)";
  let configs =
    [
      ("wpaxos fz=0", "wpaxos", 0);
      ("wpaxos fz=1", "wpaxos", 1);
      ("wankeeper", "wankeeper", 0);
      ("epaxos", "epaxos", 0);
      ("vpaxos", "vpaxos", 0);
      ("paxos", "paxos", 0);
    ]
  in
  let conflicts =
    if quick then [ 0.0; 0.5; 1.0 ] else [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]
  in
  let points =
    List.concat_map
      (fun (label, name, fz) ->
        List.map (fun c -> (label, name, fz, c)) conflicts)
      configs
  in
  let rows =
    Parmap.map (fun (_, name, fz, c) -> fig11_run name ~fz ~conflict:c) points
  in
  let table = List.combine points rows in
  let results =
    List.map
      (fun (label, _, _) ->
        ( label,
          List.filter_map
            (fun ((l, _, _, c), r) -> if l = label then Some (c, r) else None)
            table ))
      configs
  in
  List.iteri
    (fun ri region ->
      Printf.printf "\n(%c) %s — mean latency (ms)\n"
        (Char.chr (Char.code 'a' + ri))
        (Region.name region);
      Report.print_table
        ~header:("conflict" :: List.map fst results)
        ~rows:
          (List.map
             (fun c ->
               Printf.sprintf "%.0f%%" (c *. 100.0)
               :: List.map
                    (fun (_, series) ->
                      let _, per_region =
                        List.find (fun (c', _) -> c' = c) series
                      in
                      Report.fms (List.nth per_region ri))
                    results)
             conflicts))
    fig11_regions;
  print_endline
    "\n(fz=0 protocols keep flat latency for non-conflicting commands;\n\
     Ohio, the hot object's home, stays near local latency except\n\
     under leaderless EPaxos; EPaxos degrades non-linearly in the\n\
     remote regions as the conflict ratio grows)"

(* ------------------------------------------------------------------ *)
(* Fig. 12 — modeled EPaxos capacity vs conflict ratio                 *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  Report.section "Fig 12: modeled max throughput vs conflict ratio (5 nodes)";
  let node = Service.default_node ~n:5 in
  let paxos_cap = Latency_model.lan_max_throughput Latency_model.Paxos ~node in
  Report.print_table
    ~header:[ "conflict %"; "epaxos max (rps)"; "paxos max (rps)" ]
    ~rows:
      (List.map
         (fun c ->
           [
             Printf.sprintf "%.0f" (c *. 100.0);
             Report.frate
               (Latency_model.lan_max_throughput
                  (Latency_model.Epaxos { conflict = c })
                  ~node);
             Report.frate paxos_cap;
           ])
         [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]);
  let cap c =
    Latency_model.lan_max_throughput (Latency_model.Epaxos { conflict = c }) ~node
  in
  Printf.printf "degradation c=0 -> c=1: %.0f%% (paper: as much as ~40%%)\n"
    ((1.0 -. (cap 1.0 /. cap 0.0)) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Fig. 13 — locality workload across 5 regions                        *)
(* ------------------------------------------------------------------ *)

let fig13_regions = Region.aws_five

let fig13_run label name ~fz =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let per = 1 in
  let n = per * List.length fig13_regions in
  let topology = Topology.wan ~regions:fig13_regions ~replicas_per_region:per () in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.fz;
      seed = point_seed ("fig13", name, fz);
      master_region_index = 1 (* Ohio *);
      initial_object_owner = (if List.mem name zoned_protocols then Some 1 else None);
    }
  in
  let client_specs =
    List.mapi
      (fun i region ->
        Runner.clients ~region ~count:2
          (Workload.with_locality
             { Workload.default with Workload.keys = 1000 }
             ~region_index:i
             ~regions:(List.length fig13_regions)))
      fig13_regions
  in
  (* the paper runs this workload for 60 s so object placement can
     settle; give adaptation a long warmup in full mode *)
  let spec =
    Runner.spec
      ~warmup_ms:(if quick then 2_000.0 else 8_000.0)
      ~duration_ms:(if quick then 3_000.0 else 20_000.0)
      ~config ~topology ~client_specs ()
  in
  (label, Runner.run (module P) spec)

let fig13 () =
  let results =
    Parmap.map
      (fun (label, name, fz) -> fig13_run label name ~fz)
      [
        ("wpaxos fz=0", "wpaxos", 0);
        ("wankeeper", "wankeeper", 0);
        ("vpaxos", "vpaxos", 0);
        ("wpaxos fz=1", "wpaxos", 1);
        ("paxos", "paxos", 0);
        ("epaxos", "epaxos", 0);
      ]
  in
  Report.section
    "Fig 13a: average latency per region, locality workload (objects start in Ohio)";
  Report.print_table
    ~header:("protocol" :: List.map Region.name fig13_regions)
    ~rows:
      (List.map
         (fun (label, (r : Runner.result)) ->
           label
           :: List.map
                (fun region ->
                  match
                    List.find_opt
                      (fun (rg, _) -> Region.equal rg region)
                      r.Runner.per_region
                  with
                  | Some (_, s) -> Report.fms (Stats.mean s)
                  | None -> "-")
                fig13_regions)
         results);
  Report.section "Fig 13b: latency CDF (ms at quantile)";
  let quantiles = [ 25.0; 50.0; 75.0; 90.0; 99.0 ] in
  Report.print_table
    ~header:
      ("protocol" :: List.map (fun q -> Printf.sprintf "p%.0f" q) quantiles)
    ~rows:
      (List.map
         (fun (label, (r : Runner.result)) ->
           label
           :: List.map
                (fun q -> Report.fms (Stats.percentile r.Runner.latency q))
                quantiles)
         results);
  print_endline
    "\n(WanKeeper favours the master region at the other regions' cost;\n\
     WPaxos and VPaxos balance objects and show near-identical CDFs)"

(* ------------------------------------------------------------------ *)
(* Fig. 14 / Table 4 / Section-6 formulas                              *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  Report.section "Table 4: parameters explored by each protocol";
  Report.print_table ~header:[ "parameter"; "protocols" ]
    ~rows:(List.map (fun (p, ps) -> [ p; String.concat ", " ps ]) Formulas.table4);
  Report.section "Fig 14: protocol selection flowchart (all decision paths)";
  List.iter
    (fun ((_ : Advisor.deployment), r) -> Format.printf "  %a@." Advisor.pp r)
    Advisor.all_paths

let formulas () =
  Report.section "Section 6 formulas (load, capacity, latency)";
  let n = 9 in
  Printf.printf "Formula 3: L(S) = (1+c)(Q+L-2)/L\n";
  Printf.printf "Eq 4: L(Paxos,N=9)      = %.3f (paper: 4)\n" (Formulas.load_paxos ~n);
  Printf.printf "Eq 5: L(EPaxos,N=9,c=0) = %.3f (paper: 4/3)\n"
    (Formulas.load_epaxos ~n ~conflict:0.0);
  Printf.printf "Eq 5: L(EPaxos,N=9,c=1) = %.3f (paper: 8/3)\n"
    (Formulas.load_epaxos ~n ~conflict:1.0);
  Printf.printf "Eq 6: L(WPaxos,N=9,L=3) = %.3f (paper: 4/3)\n"
    (Formulas.load_wpaxos ~n ~leaders:3);
  Printf.printf "Formula 7: latency(c=0, l=0.7, DL=75ms, DQ=11ms) = %.1f ms\n"
    (Formulas.latency ~conflict:0.0 ~locality:0.7 ~dl_ms:75.0 ~dq_ms:11.0)

(* ------------------------------------------------------------------ *)
(* Ablations (design decisions called out in DESIGN.md)                *)
(* ------------------------------------------------------------------ *)

let ablation_run name ~config ~concurrency =
  let (module P) = Paxi_protocols.Registry.find_exn name in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(Topology.lan ~n_replicas:config.Config.n_replicas ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:concurrency Workload.default ]
      ()
  in
  Runner.run (module P) spec

let ablate_thrifty () =
  Report.section "Ablation: thrifty quorums (paxos, 9-node LAN, 32 clients)";
  let run thrifty =
    ablation_run "paxos"
      ~config:
        {
          (Config.default ~n_replicas:9) with
          Config.thrifty;
          seed = point_seed ("ablate-thrifty", thrifty);
        }
      ~concurrency:32
  in
  let variants =
    List.combine [ "off"; "on" ] (Parmap.map run [ false; true ])
  in
  Report.print_table
    ~header:[ "thrifty"; "ops/s"; "mean lat (ms)"; "leader busy (ms)"; "msgs" ]
    ~rows:
      (List.map
         (fun (label, (r : Runner.result)) ->
           [
             label;
             Report.frate r.Runner.throughput_rps;
             Report.fms (Stats.mean r.Runner.latency);
             Report.frate r.Runner.busiest_node_busy_ms;
             string_of_int r.Runner.messages_sent;
           ])
         variants);
  print_endline
    "(thrifty cuts the leader's copies from N-1 to Q-1 per round —\n\
     the assumption behind Formula 3)"

let ablate_commit () =
  Report.section "Ablation: piggybacked vs explicit commit (paxos, 9-node LAN)";
  let run piggyback_commit =
    ablation_run "paxos"
      ~config:
        {
          (Config.default ~n_replicas:9) with
          Config.piggyback_commit;
          seed = point_seed ("ablate-commit", piggyback_commit);
        }
      ~concurrency:32
  in
  let variants =
    List.combine [ "piggybacked"; "explicit" ] (Parmap.map run [ true; false ])
  in
  Report.print_table
    ~header:[ "commit"; "ops/s"; "mean lat (ms)"; "msgs" ]
    ~rows:
      (List.map
         (fun (label, (r : Runner.result)) ->
           [
             label;
             Report.frate r.Runner.throughput_rps;
             Report.fms (Stats.mean r.Runner.latency);
             string_of_int r.Runner.messages_sent;
           ])
         variants)

let ablate_penalty () =
  Report.section "Ablation: EPaxos dependency-bookkeeping penalty (9-node LAN)";
  let penalties = [ 1.0; 2.0; 3.0; 4.0 ] in
  let results =
    Parmap.map
      (fun p ->
        ( p,
          ablation_run "epaxos"
            ~config:
              {
                (Config.default ~n_replicas:9) with
                Config.epaxos_penalty = p;
                seed = point_seed ("ablate-penalty", p);
              }
            ~concurrency:48 ))
      penalties
  in
  Report.print_table
    ~header:[ "penalty"; "ops/s"; "mean lat (ms)" ]
    ~rows:
      (List.map
         (fun (p, (r : Runner.result)) ->
           [
             Printf.sprintf "%.1fx" p;
             Report.frate r.Runner.throughput_rps;
             Report.fms (Stats.mean r.Runner.latency);
           ])
         results);
  print_endline
    "(without the processing penalty EPaxos out-throughputs Paxos — the\n\
     penalty drives its poor LAN showing, exactly as the paper argues)"

(* ------------------------------------------------------------------ *)
(* §4.2 benchmark tiers: scalability, availability, YCSB            *)
(* ------------------------------------------------------------------ *)

let scalability () =
  Report.section
    "Scalability tier (§4.2): throughput vs cluster size and key-space size";
  let sizes = [ 3; 5; 7; 9 ] in
  let key_sizes = [ 100; 1000; 10_000 ] in
  let points =
    List.sort_uniq compare
      (List.concat_map
         (fun n -> [ ("paxos", n, 1000); ("epaxos", n, 1000) ])
         sizes
      @ List.map (fun k -> ("paxos", 9, k)) key_sizes)
  in
  let results =
    List.combine points
      (Parmap.map
         (fun (name, n, keys) ->
           let (module P) = Paxi_protocols.Registry.find_exn name in
           let spec =
             Runner.spec ~warmup_ms ~duration_ms:measured_ms
               ~config:
                 {
                   (Config.default ~n_replicas:n) with
                   Config.seed = point_seed ("scalability", name, n, keys);
                 }
               ~topology:(Topology.lan ~n_replicas:n ())
               ~client_specs:
                 [ Runner.clients ~target:Runner.Round_robin ~count:32
                     { Workload.default with Workload.keys } ]
               ()
           in
           Runner.run (module P) spec)
         points)
  in
  let get name n keys = List.assoc (name, n, keys) results in
  Printf.printf "\ncluster-size sweep (paxos vs epaxos, 1000 keys):\n";
  Report.print_table
    ~header:[ "nodes"; "paxos ops/s"; "epaxos ops/s" ]
    ~rows:
      (List.map
         (fun n ->
           [
             string_of_int n;
             Report.frate (get "paxos" n 1000).Runner.throughput_rps;
             Report.frate (get "epaxos" n 1000).Runner.throughput_rps;
           ])
         sizes);
  Printf.printf
    "\n(single-leader throughput shrinks with N — the leader handles N+2\n\
     messages per round — while leaderless protocols hold up)\n";
  Printf.printf "\nkey-space sweep (paxos, 9 nodes):\n";
  Report.print_table
    ~header:[ "keys"; "ops/s" ]
    ~rows:
      (List.map
         (fun k ->
           [ string_of_int k; Report.frate (get "paxos" 9 k).Runner.throughput_rps ])
         key_sizes)

let availability () =
  Report.section
    "Availability tier (§4.2): throughput timeline across a leader crash";
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let crash_at = 6_000.0 and crash_for = 8_000.0 in
  let spec =
    Runner.spec ~warmup_ms:500.0 ~duration_ms:20_000.0 ~collect_history:true
      ~faults:(fun f ->
        Faults.crash f ~node:(Address.replica 0) ~from_ms:crash_at
          ~duration_ms:crash_for)
      ~config:(Config.default ~n_replicas:5)
      ~topology:(Topology.lan ~n_replicas:5 ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:8
            { Workload.default with Workload.keys = 100 } ]
      ()
  in
  let result = Runner.run (module P) spec in
  let buckets = Hashtbl.create 32 in
  List.iter
    (fun (op : Linearizability.op) ->
      let b = int_of_float (op.Linearizability.responded_ms /. 1_000.0) in
      Hashtbl.replace buckets b
        (1 + Option.value (Hashtbl.find_opt buckets b) ~default:0))
    result.Runner.history;
  for b = 0 to 20 do
    let count = Option.value (Hashtbl.find_opt buckets b) ~default:0 in
    let note =
      if float_of_int b *. 1_000.0 >= crash_at
         && float_of_int b *. 1_000.0 < crash_at +. crash_for
      then "  <- leader down"
      else ""
    in
    Printf.printf "  t=%2d s  %6d ops%s\n" b count note
  done;
  Printf.printf
    "(single-leader Paxos loses availability until failover elects a new\n\
     leader; multi-leader protocols only lose the crashed leader's share)\n"

let ycsb () =
  Report.section "YCSB core workloads (paxos vs epaxos vs wpaxos, 9-node LAN)";
  let kinds = [ ("A (50/50)", `A); ("B (95/5)", `B); ("C (reads)", `C);
                ("D (latest)", `D); ("F (rmw)", `F) ] in
  let protos = [ "paxos"; "epaxos"; "wpaxos" ] in
  let points =
    List.concat_map
      (fun (_, kind) -> List.map (fun name -> (name, kind)) protos)
      kinds
  in
  let results =
    List.combine points
      (Parmap.map
         (fun (name, kind) ->
           let (module P) = Paxi_protocols.Registry.find_exn name in
           let spec =
             Runner.spec ~warmup_ms ~duration_ms:measured_ms
               ~config:
                 {
                   (Config.default ~n_replicas:9) with
                   Config.seed = point_seed ("ycsb", name, kind);
                 }
               ~topology:(lan_topology name 9)
               ~client_specs:
                 (lan_client_specs name ~concurrency:32
                    (Workload.ycsb kind ~keys:1000))
               ()
           in
           Runner.run (module P) spec)
         points)
  in
  let get name kind = List.assoc (name, kind) results in
  Report.print_table
    ~header:[ "workload"; "paxos ops/s"; "epaxos ops/s"; "wpaxos ops/s" ]
    ~rows:
      (List.map
         (fun (label, kind) ->
           [
             label;
             Report.frate (get "paxos" kind).Runner.throughput_rps;
             Report.frate (get "epaxos" kind).Runner.throughput_rps;
             Report.frate (get "wpaxos" kind).Runner.throughput_rps;
           ])
         kinds);
  print_endline
    "(read-heavy workloads favour the leaderless fast path — the Fig. 14\n\
     guidance; zipfian skew concentrates WPaxos ownership churn)"

let openloop () =
  Report.section
    "Open-loop cross-validation: Poisson arrivals vs the M/D/1 model (paxos)";
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:44 in
  let cap = Latency_model.lan_max_throughput Latency_model.Paxos ~node in
  (* measure in parallel; evaluate the model sequentially afterwards
     so its shared RNG draws in a fixed order *)
  let measured =
    Parmap.map
      (fun frac ->
        let rate = frac *. cap in
        let spec =
          Runner.spec ~warmup_ms ~duration_ms:measured_ms
            ~config:
              {
                (Config.default ~n_replicas:9) with
                Config.seed = point_seed ("openloop", frac);
              }
            ~topology:(Topology.lan ~n_replicas:9 ())
            ~client_specs:
              [ (* straight to the leader, as the model's DL assumes *)
                Runner.clients ~target:(Runner.Fixed 0)
                  ~arrival:(Runner.Open { rate_per_sec = rate /. 4.0 })
                  ~count:4 Workload.default ]
            ()
        in
        (rate, Runner.run (module P) spec))
      [ 0.2; 0.4; 0.6; 0.8 ]
  in
  Report.print_table
    ~header:[ "offered load (rps)"; "measured lat (ms)"; "M/D/1 model (ms)" ]
    ~rows:
      (List.map
         (fun (rate, (r : Runner.result)) ->
           [
             Report.frate rate;
             Report.fms (Stats.mean r.Runner.latency);
             (match
                Latency_model.lan_point Latency_model.Paxos ~node
                  ~lan:Latency_model.default_lan ~rng ~lambda_rps:rate
              with
             | Some p -> Report.fms p.Latency_model.latency_ms
             | None -> "-");
           ])
         measured);
  print_endline
    "(Poisson arrivals match the model's M/D/1 assumption directly, so\n\
     measured and modeled latencies should track closely until the knee)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment family      *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  Report.section "Bechamel micro-benchmarks (one per table/figure family)";
  let open Bechamel in
  let node = Service.default_node ~n:9 in
  let rng = Rng.create ~seed:42 in
  let lan = Latency_model.default_lan in
  let tests =
    [
      Test.make ~name:"table1_md1_wait"
        (Staged.stage (fun () ->
             ignore (Queueing.wait_time Queueing.Md1 ~lambda:4000.0 ~mu:5000.0)));
      Test.make ~name:"fig3_rtt_sample"
        (Staged.stage (fun () ->
             ignore (Dist.sample (Dist.normal_pos ~mu:0.4271 ~sigma:0.0476) rng)));
      Test.make ~name:"fig8_lan_model_point"
        (Staged.stage (fun () ->
             ignore
               (Latency_model.lan_point Latency_model.Paxos ~node ~lan ~rng
                  ~lambda_rps:3000.0)));
      Test.make ~name:"fig10_wan_model_point"
        (Staged.stage (fun () ->
             ignore
               (Latency_model.wan_point Latency_model.Paxos ~node
                  ~wan:Latency_model.default_wan ~leader_region:Region.california
                  ~lambda_rps:3000.0)));
      Test.make ~name:"fig12_load_formula"
        (Staged.stage (fun () -> ignore (Formulas.load_epaxos ~n:9 ~conflict:0.3)));
      Test.make ~name:"fig9_paxos_command_roundtrip"
        (Staged.stage (fun () ->
             let module C = Cluster.Make (Paxi_protocols.Paxos) in
             let config = Config.default ~n_replicas:5 in
             let cluster =
               C.create ~config ~topology:(Topology.lan ~n_replicas:5 ()) ()
             in
             C.register_client cluster ~id:0 ();
             let command = Command.make ~id:0 ~client:0 (Command.Put (1, 1)) in
             C.submit cluster ~client:0 ~target:0 ~command ~on_reply:(fun _ -> ());
             Sim.run_until (C.sim cluster) 100.0));
      Test.make ~name:"fig14_advisor"
        (Staged.stage (fun () ->
             ignore
               (Advisor.recommend
                  {
                    Advisor.needs_consensus = true;
                    wan = true;
                    read_heavy = false;
                    locality = Advisor.Dynamic_locality;
                    region_failure_concern = true;
                  })));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"paxi" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "-"
      in
      rows := [ name; est ] :: !rows)
    results;
  Report.print_table ~header:[ "micro-benchmark"; "ns/run" ]
    ~rows:(List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Read-path sweep                                                     *)
(* ------------------------------------------------------------------ *)

(* The lease expiry margin used everywhere the CLI says "lease": 300 ms
   against the nemesis clock-skew fault's <=120 ms offsets, i.e. margin
   >= 2x the worst skew the fault matrix injects (DESIGN.md section 11). *)
let default_lease = Config.Lease { margin_ms = 300.0 }

let read_path_tag = function
  | None -> "write-path"
  | Some (Config.Lease _) -> "lease"
  | Some Config.Quorum -> "quorum"
  | Some Config.Tail -> "tail"

(* One read-path point: n=5 LAN, closed-loop clients, the workload mix
   overridden by [config.read_ratio]. Tracing is on so the fast-read
   counter distinguishes lease/quorum/tail serves from reads that fell
   through to the slot log. Lease and quorum reads are served by the
   leader, so clients pin there; chain clients pin to the tail, which
   serves reads directly and forwards the writes to the head. *)
let read_point ~protocol ~read_path ~read_ratio ~concurrency =
  let (module P) = Paxi_protocols.Registry.find_exn protocol in
  let n = 5 in
  let tag = read_path_tag read_path in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed = point_seed ("reads", protocol, tag, read_ratio, concurrency);
      read_ratio = Some read_ratio;
      read_path;
      tracing = true;
    }
  in
  let target =
    if protocol = "chain" then Runner.Fixed (n - 1) else Runner.Fixed 0
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:[ Runner.clients ~target ~count:concurrency Workload.default ]
      ()
  in
  Runner.run (module P) spec

(* Read-ratio sweep (r = 0.5 / 0.95 / 0.99): the write path priced
   against lease reads (paxos/fpaxos/raft), ABD quorum reads (paxos)
   and chain tail reads. The headline figure is the read p50 — a local
   lease read skips the slot log and its quorum round, so at r = 0.95
   it should sit well under the write-path read p50. *)
let reads () =
  Report.section
    "Read paths: lease / quorum / tail reads vs the write path";
  let concurrency = 16 in
  let rows =
    [
      ("paxos", None);
      ("paxos", Some default_lease);
      ("paxos", Some Config.Quorum);
      ("fpaxos", Some default_lease);
      ("raft", Some default_lease);
      ("chain", Some Config.Tail);
    ]
  in
  let ratios = [ 0.5; 0.95; 0.99 ] in
  let points =
    List.concat_map
      (fun read_ratio ->
        List.map (fun (p, rp) -> (p, rp, read_ratio)) rows)
      ratios
  in
  let results =
    Parmap.map
      (fun (protocol, read_path, read_ratio) ->
        read_point ~protocol ~read_path ~read_ratio ~concurrency)
      points
  in
  let p50_or_dash s =
    if Stats.count s = 0 then "-" else Report.fms (Stats.percentile s 50.0)
  in
  Report.print_table
    ~header:
      [
        "protocol/path";
        "read ratio";
        "ops/s";
        "read p50 (ms)";
        "write p50 (ms)";
        "fast reads";
      ]
    ~rows:
      (List.map2
         (fun (protocol, read_path, read_ratio) (r : Runner.result) ->
           [
             Printf.sprintf "%s/%s" protocol (read_path_tag read_path);
             Printf.sprintf "%.2f" read_ratio;
             Report.frate r.Runner.throughput_rps;
             p50_or_dash r.Runner.read_latency;
             p50_or_dash r.Runner.write_latency;
             string_of_int (Paxi_obs.Trace.fast_reads r.Runner.trace);
           ])
         points results);
  print_endline
    "(fast reads = served off the lease / quorum / tail path; 0 on the \n\
     write-path rows because those reads ride the slot log)"

(* ------------------------------------------------------------------ *)
(* Perf guard: BENCH_pr7.json                                          *)
(* ------------------------------------------------------------------ *)

(* Paxos on a LAN where every link between the leader (replica 0) and
   its four acceptors drops 30% of its packets, both directions, for
   the whole run. One flaky acceptor would be masked by the quorum
   (the commit settles the post before its timer fires); hitting every
   leader link makes a third of the slots miss their majority on the
   first transmission, so progress on those slots is owed entirely to
   the reliable-delivery substrate. Clients pin to the leader and
   client links stay clean: the figure isolates replica-to-replica
   retransmission, not client retry. Virtual time makes it fully
   seed-deterministic, so the CI guard can hold the recovery path to a
   tight band. *)
let faulty_link_point () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let n = 5 in
  let p_drop = 0.3 in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed = point_seed ("perf-faulty-link", n);
      Config.retransmit =
        Some { Config.base_ms = 40.0; max_ms = 320.0; max_tries = 25 };
    }
  in
  let install faults =
    let horizon = warmup_ms +. measured_ms +. 5_000.0 in
    for i = 1 to n - 1 do
      Faults.flaky faults ~src:(Address.replica 0) ~dst:(Address.replica i)
        ~from_ms:0.0 ~duration_ms:horizon ~p_drop;
      Faults.flaky faults ~src:(Address.replica i) ~dst:(Address.replica 0)
        ~from_ms:0.0 ~duration_ms:horizon ~p_drop
    done
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config ~faults:install
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:
        [ Runner.clients ~target:(Runner.Fixed 0) ~count:16 Workload.default ]
      ()
  in
  (Runner.run (module P) spec, p_drop)

(* Hot-path perf guard. Wall-clocks the fixed Paxos LAN point for a
   simulator events/sec figure (with the event loop's GC allocation
   bill — total and bytes/event — and the collapsed-delivery share),
   re-checks that the pooled sweep is byte-identical to sequential,
   measures the batched-vs-unbatched saturation throughput of the
   paxos leader, and pins the recovery-path throughput of the
   faulty-link point, and adds the PR 7 read-path figures: a paxos
   lease point at read_ratio 0.95 and the read_ratio=0 byte-identity
   check that gates the write path. Not part of the run-everything
   default — run `bench/main.exe -- perf --quick` to regenerate
   BENCH_pr7.json, the trajectory future PRs compare against
   (BENCH_pr1.json holds the pre-overhaul numbers, BENCH_pr4.json the
   pre-pooling ones, BENCH_pr6.json the pre-read-path ones). *)
let perf () =
  Report.section
    "Perf guard: simulator events/sec, delivery collapse, leader batching";
  let names = [ "paxos"; "fpaxos"; "epaxos"; "wpaxos"; "wankeeper" ] in
  let points =
    List.concat_map
      (fun name -> List.map (fun c -> (name, c)) concurrency_grid)
      names
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sweep pool =
    Parmap.map ~pool (fun (name, c) -> lan_point name ~concurrency:c) points
  in
  let seq_pool = Pool.create ~jobs:1 () in
  let seq_results, seq_s = time (fun () -> sweep seq_pool) in
  Pool.shutdown seq_pool;
  let jobs = Pool.default_jobs () in
  let par_pool = Pool.create ~jobs () in
  let par_results, par_s = time (fun () -> sweep par_pool) in
  Pool.shutdown par_pool;
  let identical =
    List.for_all2
      (fun (a : Runner.result) (b : Runner.result) ->
        a.Runner.throughput_rps = b.Runner.throughput_rps
        && Stats.samples a.Runner.latency = Stats.samples b.Runner.latency)
      seq_results par_results
  in
  (* the fixed point BENCH_pr1.json timed: paxos, 9-node LAN, 32
     closed-loop clients — allocation comes from the runner's own
     event-loop bracket, so setup/teardown no longer pollutes it *)
  let fixed, fixed_s = time (fun () -> lan_point "paxos" ~concurrency:32) in
  let alloc_bytes = fixed.Runner.allocated_bytes in
  let events_per_sec = float_of_int fixed.Runner.sim_events /. fixed_s in
  let inlined_share =
    float_of_int fixed.Runner.sim_events_inlined
    /. float_of_int (Stdlib.max 1 fixed.Runner.sim_events)
  in
  Printf.printf
    "sweep: %d points; sequential %.2f s; %d-way pooled %.2f s (%.2fx); \
     identical=%b\n"
    (List.length points) seq_s jobs par_s (seq_s /. par_s) identical;
  Printf.printf
    "paxos LAN point (32 clients): %d events in %.2f s = %.0f events/s\n"
    fixed.Runner.sim_events fixed_s events_per_sec;
  Printf.printf
    "  inlined deliveries: %d (%.0f%% of events); %.0f MB allocated (%.0f \
     bytes/event)\n"
    fixed.Runner.sim_events_inlined (100.0 *. inlined_share)
    (alloc_bytes /. 1e6) fixed.Runner.bytes_per_event;
  let baseline_field file field =
    let ( let* ) = Option.bind in
    let* doc =
      match In_channel.with_open_text file In_channel.input_all with
      | s -> Result.to_option (Json.parse s)
      | exception Sys_error _ -> None
    in
    let* point = Json.member "paxos_lan_point" doc in
    let* v = Json.member field point in
    Json.to_float v
  in
  List.iter
    (fun file ->
      match baseline_field file "events_per_sec" with
      | Some base ->
          let alloc =
            match baseline_field file "allocated_mb" with
            | Some mb ->
                Printf.sprintf ", %.0f->%.0f MB alloc" mb (alloc_bytes /. 1e6)
            | None -> ""
          in
          Printf.printf "  vs %s baseline %.0f events/s: %.2fx%s\n" file base
            (events_per_sec /. base) alloc
      | None -> Printf.printf "  (no %s baseline found)\n" file)
    [ "BENCH_pr1.json"; "BENCH_pr4.json"; "BENCH_pr6.json" ];
  (* leader batching: saturation throughput at equal service-time
     parameters, one unbatched and one max_batch=8 run *)
  let sat_concurrency = if quick then 48 else 64 in
  let sat batching =
    let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
    let config =
      {
        (Config.default ~n_replicas:9) with
        Config.seed = point_seed ("perf-batching", batching <> None);
        batching;
      }
    in
    let spec =
      Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
        ~topology:(Topology.lan ~n_replicas:9 ())
        ~client_specs:
          [
            Runner.clients ~target:Runner.Round_robin ~count:sat_concurrency
              Workload.default;
          ]
        ()
    in
    Runner.run (module P) spec
  in
  let plain = sat None in
  let batched = sat (Some { Config.max_batch = 8; max_wait_ms = 0.05 }) in
  let gain =
    batched.Runner.throughput_rps /. plain.Runner.throughput_rps
  in
  Printf.printf
    "batching (%d clients): unbatched %.0f ops/s, max_batch=8 %.0f ops/s \
     (%.2fx)\n"
    sat_concurrency plain.Runner.throughput_rps batched.Runner.throughput_rps
    gain;
  let faulty, p_drop = faulty_link_point () in
  Printf.printf
    "faulty link (p_drop=%.1f, retransmission on): %.0f ops/s, %d \
     retransmits, %d dup drops, %d gave up\n"
    p_drop faulty.Runner.throughput_rps faulty.Runner.retransmits
    faulty.Runner.dup_drops faulty.Runner.gave_up;
  (* read path: the paxos lease point the CI read-sweep guard pins *)
  let lease_res =
    read_point ~protocol:"paxos" ~read_path:(Some default_lease)
      ~read_ratio:0.95 ~concurrency:16
  in
  let lease_read_p50 = Stats.percentile lease_res.Runner.read_latency 50.0 in
  let lease_write_p50 = Stats.percentile lease_res.Runner.write_latency 50.0 in
  let lease_fast_reads = Paxi_obs.Trace.fast_reads lease_res.Runner.trace in
  Printf.printf
    "read path (paxos lease, r=0.95, 16 clients): %.0f ops/s, read p50 %.3f \
     ms, write p50 %.3f ms, %d fast reads\n"
    lease_res.Runner.throughput_rps lease_read_p50 lease_write_p50
    lease_fast_reads;
  (* write-path fixed point: with the read knob at zero the run must be
     byte-identical to one that never heard of read_ratio. The baseline
     uses write_ratio=1.0 because read_ratio=0 maps to p_write=1.0
     through the same single Bernoulli draw — identical RNG stream,
     identical simulation. *)
  let read_zero read_knob =
    let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
    let config =
      {
        (Config.default ~n_replicas:5) with
        Config.seed = point_seed ("perf-read-zero", 5);
        read_ratio = (if read_knob then Some 0.0 else None);
      }
    in
    let spec =
      Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
        ~topology:(Topology.lan ~n_replicas:5 ())
        ~client_specs:
          [
            Runner.clients ~target:Runner.Round_robin ~count:16
              { Workload.default with Workload.write_ratio = 1.0 };
          ]
        ()
    in
    Runner.run (module P) spec
  in
  let rz_base = read_zero false and rz_zero = read_zero true in
  let read_zero_identical =
    rz_base.Runner.throughput_rps = rz_zero.Runner.throughput_rps
    && Stats.samples rz_base.Runner.latency = Stats.samples rz_zero.Runner.latency
  in
  Printf.printf "read_ratio=0 byte-identical to write-only baseline: %b\n"
    read_zero_identical;
  let num x = Json.Number x in
  let json =
    Json.Obj
      [
        ("pr", num 7.0);
        ("quick", Json.Bool quick);
        ( "suite",
          Json.String
            "hot path: events/sec, delivery collapse, leader batching, \
             faulty-link recovery, lease read path" );
        ("points", num (float_of_int (List.length points)));
        ("jobs", num (float_of_int jobs));
        ("sequential_wall_s", num seq_s);
        ("pooled_wall_s", num par_s);
        ("speedup", num (seq_s /. par_s));
        ("parallel_identical", Json.Bool identical);
        ( "paxos_lan_point",
          Json.Obj
            [
              ("concurrency", num 32.0);
              ("sim_events", num (float_of_int fixed.Runner.sim_events));
              ( "sim_events_inlined",
                num (float_of_int fixed.Runner.sim_events_inlined) );
              ("inlined_share", num inlined_share);
              ("wall_s", num fixed_s);
              ("events_per_sec", num events_per_sec);
              ("allocated_mb", num (alloc_bytes /. 1e6));
              ("bytes_per_event", num fixed.Runner.bytes_per_event);
              ("throughput_rps", num fixed.Runner.throughput_rps);
              ("mean_latency_ms", num (Stats.mean fixed.Runner.latency));
            ] );
        ( "paxos_batching",
          Json.Obj
            [
              ("concurrency", num (float_of_int sat_concurrency));
              ("max_batch", num 8.0);
              ("max_wait_ms", num 0.05);
              ("unbatched_rps", num plain.Runner.throughput_rps);
              ("batched_rps", num batched.Runner.throughput_rps);
              ("gain", num gain);
            ] );
        ( "faulty_link_point",
          Json.Obj
            [
              ("p_drop", num p_drop);
              ("concurrency", num 16.0);
              ("throughput_rps", num faulty.Runner.throughput_rps);
              ("mean_latency_ms", num (Stats.mean faulty.Runner.latency));
              ("completed", num (float_of_int faulty.Runner.completed));
              ("gave_up", num (float_of_int faulty.Runner.gave_up));
              ("retransmits", num (float_of_int faulty.Runner.retransmits));
              ("dup_drops", num (float_of_int faulty.Runner.dup_drops));
            ] );
        ( "read_path_point",
          Json.Obj
            [
              ("protocol", Json.String "paxos");
              ("read_path", Json.String "lease");
              ("margin_ms", num 300.0);
              ("read_ratio", num 0.95);
              ("concurrency", num 16.0);
              ("throughput_rps", num lease_res.Runner.throughput_rps);
              ("read_p50_ms", num lease_read_p50);
              ("write_p50_ms", num lease_write_p50);
              ("fast_reads", num (float_of_int lease_fast_reads));
            ] );
        ("read_ratio_zero_identical", Json.Bool read_zero_identical);
      ]
  in
  let oc = open_out "BENCH_pr7.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr7.json"

(* ------------------------------------------------------------------ *)
(* Scale sweep: BENCH_pr8.json                                         *)
(* ------------------------------------------------------------------ *)

(* Rotation-relay fan-out for the sweep: r = ceil((n - 1) / 8) keeps
   relay group size near eight members at every cluster size, so the
   leader's per-slot message cost stays ~2r while each relay's stays
   ~2*8 — both flat as n grows. *)
let scale_relay_groups n = Stdlib.max 1 ((n + 6) / 8)

let scale_point ~protocol ~n ~relay_groups =
  let (module P) = Paxi_protocols.Registry.find_exn protocol in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed = point_seed ("scale", protocol, n, relay_groups);
      relay_groups;
    }
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ~client_specs:
        [ Runner.clients ~target:Runner.Round_robin ~count:64 Workload.default ]
      ()
  in
  Runner.run (module P) spec

(* Throughput vs cluster size, direct vs relay trees (DESIGN.md §12):
   64 closed-loop clients saturate the leader, so the direct series
   degrades as the leader's 2(n-1) per-slot messages eat its cycles
   while the relay series holds near-flat at 2r. Writes
   BENCH_pr8.json; CI's scale-smoke job gates the relay-vs-direct gain
   at n = 49 and the monotone direct decline on it. *)
let scale () =
  Report.section
    "Scale: saturation throughput vs cluster size, direct vs relay trees";
  let sizes = [ 9; 25; 49; 81 ] in
  let protocols = [ "paxos"; "raft" ] in
  let points =
    List.concat_map
      (fun protocol ->
        List.concat_map
          (fun n -> [ (protocol, n, 0); (protocol, n, scale_relay_groups n) ])
          sizes)
      protocols
  in
  let results =
    Parmap.map
      (fun (protocol, n, r) ->
        ((protocol, n, r), scale_point ~protocol ~n ~relay_groups:r))
      points
  in
  let find protocol n r = List.assoc (protocol, n, r) results in
  List.iter
    (fun protocol ->
      Printf.printf "%s (64 closed-loop clients):\n" protocol;
      Report.print_table
        ~header:
          [ "n"; "direct (ops/s)"; "relay (ops/s)"; "relay groups"; "gain" ]
        ~rows:
          (List.map
             (fun n ->
               let r = scale_relay_groups n in
               let d = find protocol n 0 and v = find protocol n r in
               [
                 string_of_int n;
                 Report.frate d.Runner.throughput_rps;
                 Report.frate v.Runner.throughput_rps;
                 string_of_int r;
                 Printf.sprintf "%.2fx"
                   (v.Runner.throughput_rps /. d.Runner.throughput_rps);
               ])
             sizes))
    protocols;
  (* relay_groups = 0 must leave the direct path untouched: re-run the
     paxos n=25 direct point sequentially and demand it is
     byte-identical to the pooled sweep's. (The cross-build guarantee —
     a binary carrying relay code matches one that never had it — is
     held by the committed fig9 baseline diff and the fixed-seed pins
     in test/test_relay.ml.) *)
  let d0 = find "paxos" 25 0 in
  let d1 = scale_point ~protocol:"paxos" ~n:25 ~relay_groups:0 in
  let relay_zero_identical =
    d0.Runner.throughput_rps = d1.Runner.throughput_rps
    && Stats.samples d0.Runner.latency = Stats.samples d1.Runner.latency
    && d0.Runner.sim_events = d1.Runner.sim_events
  in
  Printf.printf "relay_groups=0 byte-identical across re-run: %b\n"
    relay_zero_identical;
  let num x = Json.Number x in
  let point_json ((protocol, n, r), (res : Runner.result)) =
    Json.Obj
      [
        ("protocol", Json.String protocol);
        ("n", num (float_of_int n));
        ("relay_groups", num (float_of_int r));
        ("throughput_rps", num res.Runner.throughput_rps);
        ("mean_latency_ms", num (Stats.mean res.Runner.latency));
        ("completed", num (float_of_int res.Runner.completed));
        ("sim_events", num (float_of_int res.Runner.sim_events));
      ]
  in
  let json =
    Json.Obj
      [
        ("pr", num 8.0);
        ("quick", Json.Bool quick);
        ( "suite",
          Json.String
            "scale: throughput vs cluster size, direct vs relay trees" );
        ("clients", num 64.0);
        ("sizes", Json.List (List.map (fun n -> num (float_of_int n)) sizes));
        ("points", Json.List (List.map point_json results));
        ("relay_zero_identical", Json.Bool relay_zero_identical);
      ]
  in
  let oc = open_out "BENCH_pr8.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr8.json"

(* ------------------------------------------------------------------ *)
(* Shard sweep: BENCH_pr9.json                                         *)
(* ------------------------------------------------------------------ *)

(* Small groups — three replicas each — so a K-shard deployment costs
   3K replicas and each group's leader is the bottleneck the open-loop
   ramp saturates. *)
let shard_n = 3

let shard_dist_name = function `Uniform -> "uniform" | `Hotspot -> "hotspot"
let shard_partition_name = function `Hash -> "hash" | `Range -> "range"

let shard_workload = function
  | `Uniform -> Workload.default
  | `Hotspot -> Workload.hotspot ~keys:1000

(* max/mean of the per-shard throughput series: 1.0 is perfect
   balance; K means one shard carries everything *)
let shard_imbalance (res : Runner.result) =
  let ss = res.Runner.shard_stats in
  let total =
    Array.fold_left (fun a s -> a +. s.Runner.shard_throughput_rps) 0.0 ss
  in
  let mean = total /. float_of_int (Array.length ss) in
  if mean <= 0.0 then 1.0
  else
    Array.fold_left
      (fun a s -> Float.max a (s.Runner.shard_throughput_rps /. mean))
      0.0 ss

(* One open-loop point: K groups of [shard_n] behind the partitioner,
   [rate] rps offered across 4K independent arrival processes aimed at
   each group's initial leader. The client timeout exceeds the run
   horizon so over-the-knee points measure the saturated service rate,
   not a retry storm compounding the overload. *)
let shard_point ?(arrival = `Poisson) ~shards ~partition ~dist ~rate () =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let clients = 4 * shards in
  let per_client = rate /. float_of_int clients in
  let arrival_spec, arrival_tag =
    match arrival with
    | `Poisson -> (Runner.Open { rate_per_sec = per_client }, "poisson")
    | `Bursty ->
        ( Runner.Bursty
            { rate_per_sec = per_client; on_ms = 50.0; off_ms = 150.0 },
          "bursty" )
  in
  let config =
    {
      (Config.default ~n_replicas:shard_n) with
      Config.seed =
        point_seed
          ( "shard",
            shards,
            shard_partition_name partition,
            shard_dist_name dist,
            arrival_tag,
            int_of_float rate );
      client_timeout_ms = 6_000.0;
    }
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(Topology.lan ~n_replicas:shard_n ())
      ~sharding:{ Runner.shards; partition }
      ~client_specs:
        [
          Runner.clients ~target:(Runner.Fixed 0) ~arrival:arrival_spec
            ~count:clients (shard_workload dist);
        ]
      ()
  in
  Runner.run (module P) spec

(* Sharded saturation: K = 1/2/4/8 groups over one simulator, Poisson
   arrival ramp past the modeled knee, uniform vs 80/20 hotspot keys
   under hash vs range partitioning. Writes BENCH_pr9.json; CI's
   shard-smoke job gates the K=4-vs-K=1 saturation gain and the
   shards=1 identity bool on it. *)
let shard () =
  Report.section
    "Shard: open-loop saturation vs group count K (paxos, 3 replicas/group)";
  let node = Service.default_node ~n:shard_n in
  let cap shards =
    Latency_model.sharded_max_throughput Latency_model.Paxos ~node ~shards
  in
  let ks = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let fracs = if quick then [ 0.6; 1.2 ] else [ 0.5; 0.9; 1.3 ] in
  let top_frac = List.fold_left Float.max 0.0 fracs in
  let combos = [ (`Uniform, `Hash); (`Hotspot, `Hash); (`Hotspot, `Range) ] in
  let points =
    List.concat_map
      (fun (dist, partition) ->
        List.concat_map
          (fun shards ->
            List.map
              (fun frac -> (dist, partition, shards, frac, frac *. cap shards))
              fracs)
          ks)
      combos
  in
  let results =
    Parmap.map
      (fun ((dist, partition, shards, _, rate) as p) ->
        (p, shard_point ~shards ~partition ~dist ~rate ()))
      points
  in
  let find dist partition shards frac =
    snd
      (List.find
         (fun ((d, p, k, f, _), _) ->
           d = dist && p = partition && k = shards && f = frac)
         results)
  in
  let saturation dist partition shards =
    List.fold_left
      (fun acc frac ->
        Float.max acc (find dist partition shards frac).Runner.throughput_rps)
      0.0 fracs
  in
  List.iter
    (fun (dist, partition) ->
      Printf.printf "%s keys, %s partitioning (Poisson arrivals):\n"
        (shard_dist_name dist)
        (shard_partition_name partition);
      let sat1 = saturation dist partition 1 in
      Report.print_table
        ~header:
          [
            "K";
            "saturation (ops/s)";
            "vs K=1";
            "imbalance (max/mean)";
            "p99 at 1.2-1.3x (ms)";
          ]
        ~rows:
          (List.map
             (fun shards ->
               let sat = saturation dist partition shards in
               let top = find dist partition shards top_frac in
               [
                 string_of_int shards;
                 Report.frate sat;
                 Printf.sprintf "%.2fx" (sat /. sat1);
                 Printf.sprintf "%.2f" (shard_imbalance top);
                 Report.fms (Stats.percentile top.Runner.latency 99.0);
               ])
             ks))
    combos;
  print_endline
    "(hash partitioning spreads the hot prefix across groups, so hotspot\n\
     saturation tracks uniform; range partitioning hands 80% of the mass\n\
     to the shards owning the first fifth of the key space — the\n\
     imbalance column is that concentration)";
  (* open- vs bursty-loop tails at the same mean load: the on/off
     stream (50ms on / 150ms off, so 4x the rate while on) pushes the
     same requests/sec through the K=4 deployment but pays in p99 *)
  let b_shards = 4 in
  let b_rate = 0.7 *. cap b_shards in
  let poisson_r, bursty_r =
    match
      Parmap.map
        (fun arrival ->
          shard_point ~arrival ~shards:b_shards ~partition:`Hash
            ~dist:`Uniform ~rate:b_rate ())
        [ `Poisson; `Bursty ]
    with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let p99 (r : Runner.result) = Stats.percentile r.Runner.latency 99.0 in
  Printf.printf
    "K=4 at %.0f rps mean: poisson p99 %s ms, bursty (50/150ms on/off) p99 \
     %s ms\n"
    b_rate
    (Report.fms (p99 poisson_r))
    (Report.fms (p99 bursty_r));
  (* shards=1 + closed loop must replay the legacy single-cluster
     stream exactly: same throughput, same latency samples, same event
     count. (The cross-build guarantee — a binary carrying shard code
     matches one that never had it — is held by the committed fig9
     baseline diff and the fixed-seed pins in test/test_shard.ml.) *)
  let identity_run sharding =
    let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
    let config =
      {
        (Config.default ~n_replicas:5) with
        Config.seed = point_seed ("shard", "identity");
      }
    in
    Runner.run
      (module P)
      (Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
         ~topology:(Topology.lan ~n_replicas:5 ())
         ?sharding
         ~client_specs:
           [ Runner.clients ~target:Runner.Round_robin ~count:8 Workload.default ]
         ())
  in
  let legacy = identity_run None in
  let sharded1 = identity_run (Some { Runner.shards = 1; partition = `Hash }) in
  let k1_identity =
    legacy.Runner.throughput_rps = sharded1.Runner.throughput_rps
    && Stats.samples legacy.Runner.latency
       = Stats.samples sharded1.Runner.latency
    && legacy.Runner.sim_events = sharded1.Runner.sim_events
  in
  Printf.printf "shards=1 closed-loop byte-identical to the unsharded runner: %b\n"
    k1_identity;
  let num x = Json.Number x in
  let point_json ((dist, partition, shards, frac, rate), (res : Runner.result))
      =
    Json.Obj
      [
        ("dist", Json.String (shard_dist_name dist));
        ("partition", Json.String (shard_partition_name partition));
        ("shards", num (float_of_int shards));
        ("frac", num frac);
        ("offered_rps", num rate);
        ("throughput_rps", num res.Runner.throughput_rps);
        ("mean_latency_ms", num (Stats.mean res.Runner.latency));
        ("p99_latency_ms", num (Stats.percentile res.Runner.latency 99.0));
        ("gave_up", num (float_of_int res.Runner.gave_up));
        ("imbalance", num (shard_imbalance res));
        ( "shard_throughput_rps",
          Json.List
            (Array.to_list
               (Array.map
                  (fun s -> num s.Runner.shard_throughput_rps)
                  res.Runner.shard_stats)) );
        ( "shard_leader_busy_ms",
          Json.List
            (Array.to_list
               (Array.map
                  (fun s -> num s.Runner.shard_leader_busy_ms)
                  res.Runner.shard_stats)) );
        ("sim_events", num (float_of_int res.Runner.sim_events));
      ]
  in
  let sat_json =
    List.concat_map
      (fun (dist, partition) ->
        List.map
          (fun shards ->
            Json.Obj
              [
                ("dist", Json.String (shard_dist_name dist));
                ("partition", Json.String (shard_partition_name partition));
                ("shards", num (float_of_int shards));
                ("saturation_rps", num (saturation dist partition shards));
                ( "imbalance",
                  num (shard_imbalance (find dist partition shards top_frac))
                );
              ])
          ks)
      combos
  in
  let json =
    Json.Obj
      [
        ("pr", num 9.0);
        ("quick", Json.Bool quick);
        ( "suite",
          Json.String
            "shard: open-loop saturation vs group count, hotspot vs uniform" );
        ("group_n", num (float_of_int shard_n));
        ("ks", Json.List (List.map (fun k -> num (float_of_int k)) ks));
        ("points", Json.List (List.map point_json results));
        ("saturation", Json.List sat_json);
        ( "bursty",
          Json.Obj
            [
              ("shards", num (float_of_int b_shards));
              ("rate_rps", num b_rate);
              ("poisson_p99_ms", num (p99 poisson_r));
              ("bursty_p99_ms", num (p99 bursty_r));
            ] );
        ("k1_identity", Json.Bool k1_identity);
      ]
  in
  let oc = open_out "BENCH_pr9.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr9.json"

(* ------------------------------------------------------------------ *)
(* Recovery sweep: BENCH_pr10.json                                     *)
(* ------------------------------------------------------------------ *)

module Nemesis = Paxi_nemesis

(* Durable-mode measurements (DESIGN.md §14), three parts:

   1. the durability tax — one fault-free closed-loop paxos point
      under storage off / sync=none / batched / every: throughput,
      latency and the measured per-fsync device time. sync=none must
      replay the memory-only stream exactly (same events, same
      samples); CI gates that identity bool.
   2. crash-and-recover — paxos and raft under crash-only nemesis
      schedules with sync=every storage: crashes now destroy volatile
      state, so the verdict proves a replica can be rebuilt from its
      durable log (safety + liveness), and the recovery time is the
      measured log-replay cost.
   3. snapshots — raft replay cost with threshold snapshotting off vs
      on: compaction caps the durable log, so replay per recovery
      stops growing with history length. *)
let durable_cfg ?(threshold = 0) mode =
  {
    Storage.default_config with
    Storage.sync_mode = mode;
    snapshot_threshold = threshold;
  }

let recovery_mode_tag = function
  | None -> "off"
  | Some (c : Storage.config) -> Storage.mode_to_string c.Storage.sync_mode

let recovery_tax_point ~storage =
  let (module P) = Paxi_protocols.Registry.find_exn "paxos" in
  let config =
    {
      (Config.default ~n_replicas:5) with
      (* one seed across all four modes: sync=none must reproduce the
         storage-off stream bit for bit, and the other modes then
         isolate the durability tax from seed noise *)
      Config.seed = point_seed ("recovery", "tax");
      Config.storage = storage;
    }
  in
  Runner.run
    (module P)
    (Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
       ~topology:(Topology.lan ~n_replicas:5 ())
       ~client_specs:
         [ Runner.clients ~target:(Runner.Fixed 0) ~count:16 Workload.default ]
       ())

let recovery_crash_schedule ~seed =
  let kinds =
    { Nemesis.Schedule.no_kinds with Nemesis.Schedule.crash = true }
  in
  let rng = Rng.create ~seed in
  Nemesis.Schedule.generate ~rng ~n:5 ~kinds ~max_faults:3
    ~horizon_ms:Nemesis.Trial.horizon_ms

let recovery () =
  Report.section "Recovery: durability tax (paxos, 5-replica LAN, 16 clients)";
  let modes =
    [
      None;
      Some (durable_cfg Storage.Sync_none);
      Some (durable_cfg Storage.Sync_batched);
      Some (durable_cfg Storage.Sync_every);
    ]
  in
  let tax = Parmap.map (fun m -> (m, recovery_tax_point ~storage:m)) modes in
  let mean_fsync_ms (r : Runner.result) =
    if r.Runner.storage_fsyncs = 0 then 0.0
    else r.Runner.storage_busy_ms /. float_of_int r.Runner.storage_fsyncs
  in
  Report.print_table
    ~header:
      [ "sync mode"; "tput (rps)"; "mean lat (ms)"; "fsyncs"; "fsync (ms)" ]
    ~rows:
      (List.map
         (fun (m, (r : Runner.result)) ->
           [
             recovery_mode_tag m;
             Printf.sprintf "%.0f" r.Runner.throughput_rps;
             Report.fms (Stats.mean r.Runner.latency);
             string_of_int r.Runner.storage_fsyncs;
             Report.fms (mean_fsync_ms r);
           ])
         tax);
  let find_tax m =
    snd (List.find (fun (m', _) -> recovery_mode_tag m' = m) tax)
  in
  let off = find_tax "off" and none = find_tax "none" in
  (* sync=none arms the whole storage layer but never touches the
     event heap or an RNG stream, so the run must be indistinguishable
     from a memory-only one *)
  let sync_none_identity =
    off.Runner.throughput_rps = none.Runner.throughput_rps
    && Stats.samples off.Runner.latency = Stats.samples none.Runner.latency
    && off.Runner.sim_events = none.Runner.sim_events
    && off.Runner.messages_sent = none.Runner.messages_sent
  in
  Printf.printf "sync=none byte-identical to storage off: %b\n"
    sync_none_identity;
  Report.section "Recovery: crash-and-recover (sync=every, crash-only nemesis)";
  let seeds = if quick then [ 7; 8 ] else [ 7; 8; 9; 10; 11; 12 ] in
  (* raft additionally snapshots every 40 applied commands in the
     threshold-on arm, so its recoveries replay a bounded suffix *)
  let arms =
    [ ("paxos", 0); ("raft", 0); ("raft", 40) ]
  in
  let points =
    List.concat_map
      (fun (protocol, threshold) ->
        List.map (fun seed -> (protocol, threshold, seed)) seeds)
      arms
  in
  let crash =
    Parmap.map
      (fun (protocol, threshold, seed) ->
        let schedule = recovery_crash_schedule ~seed in
        let v =
          Nemesis.Trial.run
            ~durable:(durable_cfg ~threshold Storage.Sync_every)
            ~protocol ~seed schedule
        in
        (protocol, threshold, seed, v))
      points
  in
  let replay_per_recovery (v : Nemesis.Trial.verdict) =
    if v.Nemesis.Trial.recoveries = 0 then 0.0
    else
      v.Nemesis.Trial.replay_ms_total
      /. float_of_int v.Nemesis.Trial.recoveries
  in
  Report.print_table
    ~header:
      [
        "protocol"; "snap thr"; "seed"; "verdict"; "recoveries";
        "replay/rec (ms)"; "timers cancelled";
      ]
    ~rows:
      (List.map
         (fun (protocol, threshold, seed, (v : Nemesis.Trial.verdict)) ->
           [
             protocol;
             (if threshold = 0 then "-" else string_of_int threshold);
             string_of_int seed;
             (if v.Nemesis.Trial.ok then "ok" else "FAIL");
             string_of_int v.Nemesis.Trial.recoveries;
             Report.fms (replay_per_recovery v);
             string_of_int v.Nemesis.Trial.timers_cancelled;
           ])
         crash);
  List.iter
    (fun (protocol, threshold, seed, (v : Nemesis.Trial.verdict)) ->
      if not v.Nemesis.Trial.ok then
        Printf.printf "FAIL %s thr=%d seed %d: %s\n" protocol threshold seed
          (String.concat "; " v.Nemesis.Trial.reasons))
    crash;
  let arm_stats want_proto want_thr =
    let vs =
      List.filter_map
        (fun (p, t, _, v) ->
          if p = want_proto && t = want_thr then Some v else None)
        crash
    in
    let recs =
      List.fold_left (fun a v -> a + v.Nemesis.Trial.recoveries) 0 vs
    in
    let replay =
      List.fold_left (fun a v -> a +. v.Nemesis.Trial.replay_ms_total) 0.0 vs
    in
    (recs, if recs = 0 then 0.0 else replay /. float_of_int recs)
  in
  let _, raft_plain_replay = arm_stats "raft" 0 in
  let _, raft_snap_replay = arm_stats "raft" 40 in
  Printf.printf
    "raft replay per recovery: %.3f ms unbounded log, %.3f ms with \
     threshold-40 snapshots\n"
    raft_plain_replay raft_snap_replay;
  let all_ok = List.for_all (fun (_, _, _, v) -> v.Nemesis.Trial.ok) crash in
  let num x = Json.Number x in
  let json =
    Json.Obj
      [
        ("pr", num 10.0);
        ("quick", Json.Bool quick);
        ( "suite",
          Json.String
            "recovery: durability tax, crash-and-recover, snapshot replay" );
        ( "tax",
          Json.List
            (List.map
               (fun (m, (r : Runner.result)) ->
                 Json.Obj
                   [
                     ("mode", Json.String (recovery_mode_tag m));
                     ("throughput_rps", num r.Runner.throughput_rps);
                     ("mean_latency_ms", num (Stats.mean r.Runner.latency));
                     ("fsyncs", num (float_of_int r.Runner.storage_fsyncs));
                     ( "storage_writes",
                       num (float_of_int r.Runner.storage_writes) );
                     ("mean_fsync_ms", num (mean_fsync_ms r));
                   ])
               tax) );
        ("sync_none_identity", Json.Bool sync_none_identity);
        ( "crash",
          Json.List
            (List.map
               (fun (protocol, threshold, seed, (v : Nemesis.Trial.verdict)) ->
                 Json.Obj
                   [
                     ("protocol", Json.String protocol);
                     ("snapshot_threshold", num (float_of_int threshold));
                     ("seed", num (float_of_int seed));
                     ("ok", Json.Bool v.Nemesis.Trial.ok);
                     ( "recoveries",
                       num (float_of_int v.Nemesis.Trial.recoveries) );
                     ("replay_ms_total", num v.Nemesis.Trial.replay_ms_total);
                     ("replay_ms_per_recovery", num (replay_per_recovery v));
                     ( "timers_cancelled",
                       num (float_of_int v.Nemesis.Trial.timers_cancelled) );
                     ("completed", num (float_of_int v.Nemesis.Trial.completed));
                   ])
               crash) );
        ("crash_all_ok", Json.Bool all_ok);
        ( "raft_replay_ms_per_recovery",
          Json.Obj
            [
              ("unbounded", num raft_plain_replay);
              ("threshold_40", num raft_snap_replay);
            ] );
      ]
  in
  let oc = open_out "BENCH_pr10.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr10.json";
  if not sync_none_identity then begin
    prerr_endline "recovery: sync=none diverged from the memory-only stream";
    exit 1
  end;
  if not all_ok then begin
    prerr_endline "recovery: a crash-and-recover trial failed its oracle";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("formulas", formulas);
    ("scalability", scalability);
    ("availability", availability);
    ("ycsb", ycsb);
    ("openloop", openloop);
    ("reads", reads);
    ("ablate-thrifty", ablate_thrifty);
    ("ablate-commit", ablate_commit);
    ("ablate-penalty", ablate_penalty);
    ("bechamel", bechamel);
  ]

(* runnable by name but not part of the run-everything default *)
let extra_experiments =
  [ ("perf", perf); ("scale", scale); ("shard", shard); ("recovery", recovery) ]

(* ------------------------------------------------------------------ *)
(* nemesis subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let nemesis_usage () =
  prerr_endline
    "usage: main.exe nemesis [--protocol NAME[,NAME..]] [--trials N] \
     [--seed N] [--max-faults N] [--n N] [--relay-groups N] [--shards N] \
     [--arrival closed|poisson:RATE|bursty:RATE:ON:OFF] [--read-ratio F] \
     [--read-path lease|quorum|tail] [--skew] [--json] [--replay \
     SCHEDULE_JSON]";
  exit 2

let read_path_arg who v =
  match v with
  | "lease" -> Config.Lease { margin_ms = 300.0 }
  | "quorum" -> Config.Quorum
  | "tail" -> Config.Tail
  | _ ->
      Printf.eprintf "%s: --read-path expects lease|quorum|tail, got %S\n" who v;
      exit 2

let read_ratio_arg who v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 && f <= 1.0 -> f
  | _ ->
      Printf.eprintf "%s: --read-ratio expects a fraction in [0,1], got %S\n"
        who v;
      exit 2

(* --arrival closed | poisson:RATE | bursty:RATE:ON_MS:OFF_MS — RATE
   is the aggregate offered rps, split evenly across the subcommand's
   clients *)
let arrival_arg who v =
  let bad () =
    Printf.eprintf
      "%s: --arrival expects closed | poisson:RATE | \
       bursty:RATE:ON_MS:OFF_MS, got %S\n"
      who v;
    exit 2
  in
  let pos f = match float_of_string_opt f with
    | Some x when x > 0.0 -> x
    | _ -> bad ()
  in
  match String.split_on_char ':' v with
  | [ "closed" ] -> Runner.Closed
  | [ ("poisson" | "open"); r ] -> Runner.Open { rate_per_sec = pos r }
  | [ "bursty"; r; on; off ] ->
      Runner.Bursty { rate_per_sec = pos r; on_ms = pos on; off_ms = pos off }
  | _ -> bad ()

(* split an aggregate-rate arrival across [count] clients *)
let arrival_per_client arrival ~count =
  let c = float_of_int count in
  match arrival with
  | Runner.Closed -> Runner.Closed
  | Runner.Open { rate_per_sec } ->
      Runner.Open { rate_per_sec = rate_per_sec /. c }
  | Runner.Bursty { rate_per_sec; on_ms; off_ms } ->
      Runner.Bursty { rate_per_sec = rate_per_sec /. c; on_ms; off_ms }

(* Randomized fault-schedule campaigns (or a single replayed repro)
   against the named protocols; exits non-zero when any trial fails,
   printing a shrunk one-line repro for each failure. *)
let nemesis_main args =
  let protocols = ref [] in
  let trials = ref 8 in
  let seed = ref 42 in
  let max_faults = ref 4 in
  let n = ref None in
  let relay_groups = ref None in
  let shards = ref None in
  let arrival = ref None in
  let read_ratio = ref None in
  let read_path = ref None in
  let skew = ref false in
  let json = ref false in
  let replay = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ ->
        Printf.eprintf "nemesis: %s expects a positive integer, got %S\n" name v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--protocol" :: v :: rest ->
        protocols := !protocols @ String.split_on_char ',' v;
        parse rest
    | "--trials" :: v :: rest ->
        trials := int_arg "--trials" v;
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some i -> seed := i
        | None ->
            Printf.eprintf "nemesis: --seed expects an integer, got %S\n" v;
            exit 2);
        parse rest
    | "--max-faults" :: v :: rest ->
        max_faults := int_arg "--max-faults" v;
        parse rest
    | "--n" :: v :: rest ->
        n := Some (int_arg "--n" v);
        parse rest
    | "--relay-groups" :: v :: rest ->
        relay_groups := Some (int_arg "--relay-groups" v);
        parse rest
    | "--shards" :: v :: rest ->
        shards := Some (int_arg "--shards" v);
        parse rest
    | "--arrival" :: v :: rest ->
        (* the trial drives 3 clients; split the aggregate rate *)
        arrival := Some (arrival_per_client (arrival_arg "nemesis" v) ~count:3);
        parse rest
    | "--read-ratio" :: v :: rest ->
        read_ratio := Some (read_ratio_arg "nemesis" v);
        parse rest
    | "--read-path" :: v :: rest ->
        read_path := Some (read_path_arg "nemesis" v);
        parse rest
    | "--skew" :: rest ->
        skew := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--replay" :: v :: rest ->
        (match Nemesis.Schedule.of_string v with
        | Ok s -> replay := Some s
        | Error e ->
            Printf.eprintf "nemesis: bad --replay schedule: %s\n" e;
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf "nemesis: unknown argument %S\n" arg;
        nemesis_usage ()
  in
  parse args;
  let protocols =
    match !protocols with
    | [] -> Paxi_protocols.Registry.names
    | ps ->
        List.iter
          (fun p ->
            if Paxi_protocols.Registry.find p = None then begin
              Printf.eprintf "nemesis: unknown protocol %S (known: %s)\n" p
                (String.concat ", " Paxi_protocols.Registry.names);
              exit 2
            end)
          ps;
        ps
  in
  (* lease campaigns always face the clock-skew fault: skew is what a
     lease's expiry margin defends against, so a lease run that never
     sees it would be vacuous *)
  let skew =
    !skew || (match !read_path with Some (Config.Lease _) -> true | _ -> false)
  in
  match !replay with
  | Some schedule ->
      let failed = ref false in
      List.iter
        (fun protocol ->
          let v =
            Nemesis.Trial.run ?n:!n ?read_ratio:!read_ratio
              ?read_path:!read_path ?relay_groups:!relay_groups
              ?shards:!shards ?arrival:!arrival ~protocol ~seed:!seed schedule
          in
          if not v.Nemesis.Trial.ok then failed := true;
          Printf.printf "nemesis %s seed %d: %s (%d completed, %d gave up)\n"
            protocol !seed
            (if v.Nemesis.Trial.ok then "ok"
             else String.concat "; " v.Nemesis.Trial.reasons)
            v.Nemesis.Trial.completed v.Nemesis.Trial.gave_up)
        protocols;
      if !failed then exit 1
  | None ->
      let reports =
        List.map
          (fun protocol ->
            Nemesis.Campaign.run ~protocol ~trials:!trials ~seed:!seed
              ~max_faults:!max_faults ?n:!n ?read_ratio:!read_ratio
              ?read_path:!read_path ?relay_groups:!relay_groups
              ?shards:!shards ?arrival:!arrival ~skew ())
          protocols
      in
      if !json then
        print_endline
          (Json.to_string
             (Json.List (List.map Nemesis.Campaign.to_json reports)))
      else
        List.iter (fun r -> Format.printf "%a" Nemesis.Campaign.pp r) reports;
      if List.exists (fun r -> r.Nemesis.Campaign.failures <> []) reports then
        exit 1

(* ------------------------------------------------------------------ *)
(* dissect subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let dissect_usage () =
  prerr_endline
    "usage: main.exe dissect [--protocol NAME] [--load FRAC] [--n N] \
     [--relay-groups N] [--shards N] [--arrival \
     closed|poisson:RATE|bursty:RATE:ON:OFF] [--read-ratio F] [--read-path \
     lease|quorum|tail] [--durable none|batched|every] [--trace FILE] \
     [--quick]";
  exit 2

(* Latency dissection: run one traced open-loop point and print the
   measured wait/service/network breakdown next to the analytic
   model's Wq + ts + DL + DQ decomposition (§3.3). *)
let dissect_main args =
  let protocol = ref "paxos" in
  let load = ref 0.6 in
  let n_flag = ref None in
  let relay_groups = ref 0 in
  let shards = ref 1 in
  let arrival = ref None in
  let read_ratio = ref None in
  let read_path = ref None in
  let durable = ref None in
  let trace_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--protocol" :: v :: rest ->
        protocol := v;
        parse rest
    | "--durable" :: v :: rest ->
        (match Storage.mode_of_string v with
        | Ok m ->
            (* jitter stays at the default 0 so the measured per-fsync
               device time is gated exactly against the model term *)
            durable := Some (durable_cfg m)
        | Error e ->
            Printf.eprintf "dissect: %s\n" e;
            exit 2);
        parse rest
    | "--load" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 && f < 1.0 -> load := f
        | _ ->
            Printf.eprintf "dissect: --load expects a fraction in (0,1), got %S\n" v;
            exit 2);
        parse rest
    | "--n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some i when i >= 3 -> n_flag := Some i
        | _ ->
            Printf.eprintf "dissect: --n expects an integer >= 3, got %S\n" v;
            exit 2);
        parse rest
    | "--relay-groups" :: v :: rest ->
        (match int_of_string_opt v with
        | Some i when i >= 0 -> relay_groups := i
        | _ ->
            Printf.eprintf
              "dissect: --relay-groups expects a non-negative integer, got %S\n"
              v;
            exit 2);
        parse rest
    | "--shards" :: v :: rest ->
        (match int_of_string_opt v with
        | Some i when i >= 1 -> shards := i
        | _ ->
            Printf.eprintf "dissect: --shards expects an integer >= 1, got %S\n"
              v;
            exit 2);
        parse rest
    | "--arrival" :: v :: rest ->
        arrival := Some (arrival_arg "dissect" v);
        parse rest
    | "--read-ratio" :: v :: rest ->
        read_ratio := Some (read_ratio_arg "dissect" v);
        parse rest
    | "--read-path" :: v :: rest ->
        read_path := Some (read_path_arg "dissect" v);
        parse rest
    | "--trace" :: v :: rest ->
        trace_file := Some v;
        parse rest
    | "--quick" :: rest -> parse rest (* consumed by the global flag *)
    | arg :: _ ->
        Printf.eprintf "dissect: unknown argument %S\n" arg;
        dissect_usage ()
  in
  parse args;
  let (module P) =
    match Paxi_protocols.Registry.find !protocol with
    | Some p -> p
    | None ->
        Printf.eprintf "dissect: unknown protocol %S (known: %s)\n" !protocol
          (String.concat ", " Paxi_protocols.Registry.names);
        exit 2
  in
  let n = Option.value !n_flag ~default:5 in
  let node = Service.default_node ~n in
  let model_proto =
    match !protocol with
    | ("paxos" | "raft") when !relay_groups > 0 ->
        Some (Latency_model.Paxos_relay { groups = !relay_groups })
    | "paxos" | "raft" -> Some Latency_model.Paxos
    | "fpaxos" ->
        Some (Latency_model.Fpaxos { q2 = Paxi_protocols.Fpaxos.default_q2 ~n })
    | "epaxos" -> Some (Latency_model.Epaxos { conflict = 0.0 })
    | _ -> None
  in
  (* Offered load as a fraction of the modeled saturation point; when
     the protocol has no analytic model, scale off plain Paxos. *)
  let cap =
    Latency_model.lan_max_throughput
      (Option.value model_proto ~default:Latency_model.Paxos)
      ~node
  in
  let rate =
    match !read_path with
    | Some Config.Quorum ->
        (* a quorum read costs two broadcast rounds at the leader, and
           quorum-mode writes defer their acks behind CommitAcks — the
           write-path capacity estimate is ~4x too optimistic here, so
           derate the offered load to keep the zero-queue read model
           comparable *)
        !load *. cap /. 4.0
    | _ -> !load *. cap
  in
  (* each group brings its own leader, so the offered load scales with
     the shard count; per-group load stays at --load of capacity *)
  let rate = rate *. float_of_int !shards in
  (* a real fsync puts the storage device on the commit path: its
     service rate (one fsync per commit under sync=every, one per
     group-commit window under batched — bounded the same way) caps
     the deployment well below the CPU model's knee, so scale the
     offered load off the disk ceiling instead *)
  let rate =
    match !durable with
    | Some { Storage.sync_mode = Storage.Sync_none; _ } | None -> rate
    | Some c ->
        Float.min rate (!load *. 1000.0 /. Float.max 1e-9 c.Storage.fsync_ms)
  in
  (* --read-path implies a read-heavy mix unless --read-ratio says
     otherwise; no read flags leaves the write-path point (and its
     seed) exactly as before *)
  let read_ratio =
    match (!read_ratio, !read_path) with
    | (Some _ as r), _ -> r
    | None, Some _ -> Some 0.95
    | None, None -> None
  in
  let config =
    {
      (Config.default ~n_replicas:n) with
      Config.seed =
        (* big-n / relay / sharded / custom-arrival / durable points
           get their own seed families; the default n=5 direct seeds
           stay exactly as before *)
        (if !durable <> None then
           point_seed
             ("dissect", !protocol, !load, "durable", recovery_mode_tag !durable)
         else if !shards > 1 || !arrival <> None then
           point_seed ("dissect", !protocol, !load, "shards", !shards)
         else
           match (!n_flag, !relay_groups) with
           | None, 0 -> (
               match (read_ratio, !read_path) with
               | None, None -> point_seed ("dissect", !protocol, !load)
               | r, p ->
                   point_seed ("dissect", !protocol, !load, r, read_path_tag p))
           | _, g -> point_seed ("dissect", !protocol, !load, n, g));
      tracing = true;
      relay_groups = !relay_groups;
      read_ratio;
      read_path = !read_path;
      storage = !durable;
    }
  in
  let spec =
    Runner.spec ~warmup_ms ~duration_ms:measured_ms ~config
      ~topology:(Topology.lan ~n_replicas:n ())
      ?sharding:
        (if !shards > 1 then
           Some { Runner.shards = !shards; partition = `Hash }
         else None)
      ~client_specs:
        [ (* straight to the serving node, as the model's DL assumes:
             the leader, or the tail for chain tail reads *)
          Runner.clients
            ~target:
              (Runner.Fixed
                 (match !read_path with Some Config.Tail -> n - 1 | _ -> 0))
            ~arrival:
              (match !arrival with
              | Some a -> arrival_per_client a ~count:4
              | None -> Runner.Open { rate_per_sec = rate /. 4.0 })
            ~count:4 Workload.default ]
      ()
  in
  Report.section
    (Printf.sprintf "Latency dissection: %s at %.0f%% of modeled capacity \
                     (%.0f rps offered)"
       !protocol (100.0 *. !load) rate);
  let result = Runner.run (module P) spec in
  if !shards > 1 then
    Printf.printf
      "(%d hash-partitioned groups; the trace, breakdown and model terms \
       below cover shard 0's group at its per-group load)\n"
      !shards;
  let tr = result.Runner.trace in
  let e2e = Paxi_obs.Trace.e2e tr in
  let requests = Stats.count e2e in
  if requests = 0 then begin
    prerr_endline "dissect: no requests completed inside the measured window";
    exit 1
  end;
  let e2e_mean = Stats.mean e2e in
  let components = Paxi_obs.Trace.components tr in
  let sum_means =
    List.fold_left (fun acc (_, s) -> acc +. Stats.mean s) 0.0 components
  in
  Report.print_table
    ~header:[ "component"; "mean (ms)"; "p99 (ms)"; "share" ]
    ~rows:
      (List.map
         (fun (name, s) ->
           [
             name;
             Report.fms (Stats.mean s);
             Report.fms (Stats.percentile s 99.0);
             Printf.sprintf "%5.1f%%" (100.0 *. Stats.mean s /. e2e_mean);
           ])
         components
      @ [
          [ "sum of components"; Report.fms sum_means; ""; "" ];
          [ "end-to-end"; Report.fms e2e_mean; Report.fms (Stats.percentile e2e 99.0); "" ];
        ]);
  let read_mode = read_ratio <> None || !read_path <> None in
  let sum_err = Float.abs (sum_means -. e2e_mean) /. e2e_mean in
  Printf.printf "components sum to %s of the measured mean (%d requests)\n"
    (Printf.sprintf "%.3f%%" (100.0 *. (1.0 -. sum_err)))
    requests;
  if sum_err > 0.01 then begin
    if read_mode then
      (* fast-path reads skip the propose/quorum stages, so the staged
         component means no longer telescope against the blended e2e *)
      print_endline
        "(component means mix fast-path reads with staged writes; telescope \
         check skipped)"
    else begin
      prerr_endline "dissect: breakdown does not telescope to end-to-end (>1%)";
      exit 1
    end
  end;
  (* model comparison *)
  (match model_proto with
  | _ when read_mode ->
      (* the write-path table below assumes every request rode the slot
         log; the read-path comparison happens in its own section *)
      ()
  | None ->
      Printf.printf "(no analytic model for %s; measured breakdown only)\n"
        !protocol
  | Some proto -> (
      let rng = Rng.create ~seed:44 in
      match
        Latency_model.lan_breakdown ?durable:!durable proto ~node
          ~lan:Latency_model.default_lan ~rng
          ~lambda_rps:(rate /. float_of_int !shards)
      with
      | None -> print_endline "(model saturated at this load)"
      | Some b ->
          (* sharded runs dissect shard 0's group: its trace, its
             busiest replica, per-group offered load for the model *)
          let leader =
            if !shards > 1 then
              result.Runner.shard_stats.(0).Runner.shard_leader
            else result.Runner.busiest_node
          in
          let per_req total = total /. float_of_int requests in
          let wq_meas = per_req (Paxi_obs.Trace.node_wait_ms tr leader) in
          let ts_meas = per_req (Paxi_obs.Trace.node_busy_ms tr leader) in
          let dl_meas =
            Stats.mean (Paxi_obs.Trace.net_in tr)
            +. Stats.mean (Paxi_obs.Trace.net_out tr)
          in
          let dq_meas =
            let c = Paxi_obs.Trace.quorum_wait tr in
            if Stats.count c > 0 then Stats.mean c
            else Stats.mean (Paxi_obs.Trace.server_residency tr)
          in
          let row name meas model =
            [
              name;
              Report.fms meas;
              Report.fms model;
              (if model > 0.0 then
                 Printf.sprintf "%+.1f%%" (100.0 *. (meas -. model) /. model)
               else "-");
            ]
          in
          let who = if !relay_groups > 0 then "busiest" else "leader" in
          (* the device's measured per-fsync service time against the
             model's durability term; 0/0 when storage is off or never
             on the measured path *)
          let fsync_meas =
            if result.Runner.storage_fsyncs = 0 then 0.0
            else
              result.Runner.storage_busy_ms
              /. float_of_int result.Runner.storage_fsyncs
          in
          Report.print_table
            ~header:[ "term"; "measured (ms)"; "model (ms)"; "rel err" ]
            ~rows:
              ([
                 row
                   (Printf.sprintf "queue wait Wq (%s)" who)
                   wq_meas b.Latency_model.wq_ms;
                 row
                   (Printf.sprintf "service ts (%s)" who)
                   ts_meas b.Latency_model.service_ms;
                 row "client net DL" dl_meas b.Latency_model.dl_ms;
                 row "quorum DQ" dq_meas b.Latency_model.dq_ms;
               ]
              @ (if !durable <> None then
                   [ row "fsync Dfsync" fsync_meas b.Latency_model.durability_ms ]
                 else [])
              @ [ row "total" e2e_mean b.Latency_model.total_ms ]);
          print_endline
            "(measured leader wait/occupancy include every message at the \n\
             busiest node — heartbeats and quorum replies, not only the \n\
             request itself — so small positive errors are expected)";
          (match !durable with
          | Some { Storage.sync_mode = Storage.Sync_every; _ } ->
              (* CI's storage-smoke gate: with per-sync fsyncs and no
                 jitter the measured device service time must land on
                 the model term *)
              let err =
                Float.abs (fsync_meas -. b.Latency_model.durability_ms)
                /. Float.max 1e-9 b.Latency_model.durability_ms
              in
              Printf.printf "fsync term rel err: %.2f%% (%d fsyncs)\n"
                (100.0 *. err) result.Runner.storage_fsyncs;
              if err > 0.05 then begin
                prerr_endline
                  "dissect: fsync term off the model by more than 5%";
                exit 1
              end
          | _ -> ());
          if !relay_groups > 0 then begin
            (* the relay tree's internal latency: first member delivery
               at the relay to combined-ack departure, against the
               model's worst-member-RTT + touch term (DESIGN.md §12) *)
            let hops = Paxi_obs.Trace.relay_hops tr in
            let hop_meas = Stats.mean (Paxi_obs.Trace.relay_hop_ms tr) in
            let hop_model =
              Latency_model.relay_hop_lan ~lan:Latency_model.default_lan ~n
                ~groups:!relay_groups ~rng:(Rng.create ~seed:46)
            in
            Printf.printf
              "relay hop (aggregate span over %d hops): measured %s ms, \
               model %s ms (%+.1f%%)\n"
              hops
              (Report.fms hop_meas)
              (Report.fms hop_model)
              (100.0 *. (hop_meas -. hop_model) /. hop_model)
          end));
  (* read-path dissection: measured read/write split, fast-read count,
     and the read terms against Latency_model.read_breakdown *)
  (if read_mode then begin
     let reads = Paxi_obs.Trace.read_e2e tr in
     let writes = Paxi_obs.Trace.write_e2e tr in
     let fast = Paxi_obs.Trace.fast_reads tr in
     Printf.printf
       "reads: %d (%d served off the fast path), writes: %d, read_ratio %s\n"
       (Stats.count reads) fast (Stats.count writes)
       (match read_ratio with Some r -> Printf.sprintf "%.2f" r | None -> "-");
     let read_kind =
       match !read_path with
       | Some (Config.Lease _) -> Some Latency_model.Local_read
       | Some Config.Quorum -> Some Latency_model.Quorum_read
       | Some Config.Tail -> Some Latency_model.Tail_read
       | None -> None
     in
     match read_kind with
     | None ->
         print_endline
           "(no --read-path: reads ride the slot log, so the write-path \
            model above is the read model too)"
     | Some _ when Stats.count reads = 0 ->
         prerr_endline
           "dissect: no reads completed inside the measured window";
         exit 1
     | Some kind ->
         let rng = Rng.create ~seed:45 in
         let rb =
           Latency_model.read_breakdown kind ~node
             ~lan:Latency_model.default_lan ~rng
         in
         let read_mean = Stats.mean reads in
         (* client RTT is measured on every request's first and last
            hop; the remainder of a fast read is serve time (plus the
            quorum rounds for ABD reads), which the model prices as
            service + DQ *)
         let dl_meas =
           Stats.mean (Paxi_obs.Trace.net_in tr)
           +. Stats.mean (Paxi_obs.Trace.net_out tr)
         in
         let row name meas model =
           [
             name;
             Report.fms meas;
             Report.fms model;
             (if model > 0.0 then
                Printf.sprintf "%+.1f%%" (100.0 *. (meas -. model) /. model)
              else "-");
           ]
         in
         Report.section
           (Printf.sprintf "Read path: %s measured vs model"
              (Latency_model.read_kind_name kind));
         Report.print_table
           ~header:[ "term"; "measured (ms)"; "model (ms)"; "rel err" ]
           ~rows:
             [
               row "client net DL" dl_meas rb.Latency_model.dl_ms;
               row "serve + quorum (residual)" (read_mean -. dl_meas)
                 (rb.Latency_model.service_ms +. rb.Latency_model.dq_ms);
               row "read end-to-end" read_mean rb.Latency_model.total_ms;
             ];
         if Stats.count writes > 0 then
           Printf.printf
             "write e2e mean %s ms — a fast read saves %.1f%% of the write \
              path\n"
             (Report.fms (Stats.mean writes))
             (100.0 *. (1.0 -. (read_mean /. Stats.mean writes)))
   end);
  (* warmup-aware time series *)
  let series = Paxi_obs.Trace.series tr in
  let from_ms, _ = Paxi_obs.Trace.window tr in
  Report.print_table
    ~header:[ "bucket (ms)"; "completions"; "mean lat (ms)"; "" ]
    ~rows:
      (List.map
         (fun (start, count, mean) ->
           [
             Printf.sprintf "%.0f" start;
             string_of_int count;
             Report.fms mean;
             (if start < from_ms then "warmup" else "");
           ])
         series);
  Report.print_table
    ~header:[ "message type"; "sent" ]
    ~rows:
      (List.map
         (fun (label, count) -> [ label; string_of_int count ])
         (Paxi_obs.Trace.message_counts tr));
  (match !trace_file with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Json.to_string (Paxi_obs.Trace.to_chrome_json tr)));
      Printf.printf "wrote %d spans to %s (open in chrome://tracing)\n"
        (Paxi_obs.Trace.span_count tr)
        path)

let run_experiments names =
  let names = List.filter (fun n -> n <> "--quick") names in
  let requested = match names with [] -> List.map fst experiments | _ -> names in
  let known = experiments @ extra_experiments in
  List.iter
    (fun name ->
      match List.assoc_opt name known with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s, nemesis)\n" name
            (String.concat ", " (List.map fst known));
          exit 1)
    requested

let () =
  match Array.to_list Sys.argv with
  | _ :: "nemesis" :: rest -> nemesis_main rest
  | _ :: "dissect" :: rest -> dissect_main rest
  | _ :: names -> run_experiments names
  | [] -> run_experiments []
